/// \file engine.h
/// \brief The content-based video retrieval engine (the paper's system).
///
/// Ties every substrate together: ingestion decodes a video, extracts
/// key frames (§4.1), runs the seven feature extractors (§4.3-4.8),
/// assigns the range-finder bucket (§4.2) and persists everything into
/// the VIDEO_STORE / KEY_FRAMES tables; querying extracts the same
/// features from the query frame, prunes candidates through the range
/// index, ranks by per-feature or combined distance, and supports
/// video-to-video search via DTW over key-frame sequences.

#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "features/extractor_registry.h"
#include "features/plan/extraction_cache.h"
#include "features/plan/extraction_plan.h"
#include "imaging/image.h"
#include "index/range_bucket_index.h"
#include "keyframe/keyframe_extractor.h"
#include "retrieval/feature_matrix.h"
#include "retrieval/ingest_stats.h"
#include "retrieval/matrix_store.h"
#include "retrieval/query_stats.h"
#include "similarity/combined_scorer.h"
#include "storage/video_store.h"
#include "util/mutex.h"
#include "util/shared_mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace vr {

/// Tuning for the retrieval engine.
struct EngineOptions {
  /// Features extracted at ingest and available for querying.
  std::vector<FeatureKind> enabled_features = {
      FeatureKind::kColorHistogram, FeatureKind::kGlcm,
      FeatureKind::kGabor,          FeatureKind::kTamura,
      FeatureKind::kAutoCorrelogram, FeatureKind::kNaiveSignature,
      FeatureKind::kRegionGrowing,
  };
  KeyFrameOptions keyframe;
  RangeFinderOptions range;
  /// Prune candidates through the range index; false scans everything.
  bool use_index = true;
  /// Candidate policy when use_index is true.
  RangeLookupMode lookup_mode = RangeLookupMode::kLineage;
  /// Per-feature score normalization for the combined ranking.
  NormalizationKind normalization = NormalizationKind::kMinMax;
  /// Store the full video bytes in VIDEO_STORE (disable to save space
  /// in large experiments; key frames are always stored).
  bool store_video_blob = true;
  /// Format of stored key-frame images: lossless PNM or the DCT codec
  /// (the paper stores JPEG-converted frames).
  enum class KeyFrameFormat { kPnm, kVjf } key_frame_format = KeyFrameFormat::kPnm;
  /// Quality for KeyFrameFormat::kVjf.
  int key_frame_quality = 85;
  /// When false, a damaged table is quarantined at open instead of
  /// failing it; the engine serves whatever is healthy (see
  /// DamageReport()). Mirrors DatabaseOptions::paranoid.
  bool paranoid = true;
  /// Filesystem abstraction for all storage I/O (Env::Default() if null).
  Env* env = nullptr;
  /// Candidate count at which ranking shards distance columns across
  /// the rank pool; below it (or at 0) ranking stays serial. Sharded
  /// and serial ranking return byte-identical results, so this is a
  /// pure performance knob.
  size_t parallel_rank_threshold = 512;
  /// Rank-pool worker count; 0 means one per hardware thread. The pool
  /// is only created when the resolved count exceeds 1 and
  /// parallel_rank_threshold is non-zero.
  size_t rank_workers = 0;
  /// By default the resolved rank worker count is capped at
  /// hardware_concurrency(): on a 1-CPU box, oversubscribed shards are
  /// strictly slower than a serial rank (BENCH_query.json measured
  /// shards=4 at ~1.4x the serial latency). Benchmarks that must
  /// exercise the sharded path regardless set this to true.
  bool rank_oversubscribe = false;
  /// Entry capacity of the content-addressed extraction cache keyed on
  /// query-frame pixel bytes (see features/plan/extraction_cache.h);
  /// 0 disables caching. Repeated query frames skip extraction
  /// entirely — the dominant cost of a cold query.
  size_t extraction_cache_capacity = 64;
  /// Persist the columnar FeatureMatrix (exact doubles + quantized
  /// shadow codes) as a paged cache file next to the tables, so a warm
  /// open streams binary pages instead of re-extracting every row from
  /// the store. The file validates against the store's generation at
  /// open and transparently falls back to the legacy rebuild when
  /// stale or damaged (see retrieval/matrix_store.h).
  bool persist_matrix = true;
  /// Enable the two-stage query: an integer code-space coarse scan
  /// over the 8-bit quantized columns (similarity/code_kernels.h)
  /// keeps at least k * two_stage_coarse_factor candidates — plus
  /// every candidate whose certified coarse-score interval overlaps
  /// the cut, so the exact rerank provably returns the bit-identical
  /// top-k (see DESIGN.md's margin proof sketch). Only activates when
  /// the final score is batch-independent — single-feature queries
  /// always are; combined queries only under NormalizationKind::kNone
  /// (batch normalizers make every score depend on the whole candidate
  /// set) — otherwise the query silently runs the pure exact path.
  /// When a kind has no code kernel or the margin would keep every
  /// candidate (wide quantization range), the query falls back to the
  /// exact scan and QueryStats::two_stage_fallbacks counts it.
  bool two_stage = true;
  /// Candidate count below which two-stage is skipped (the exact scan
  /// is already cheap; the coarse pass would only add overhead).
  size_t two_stage_min_candidates = 4096;
  /// Coarse stage keeps k * this many candidates for the exact rerank.
  size_t two_stage_coarse_factor = 4;
};

/// One ranked retrieval hit.
struct QueryResult {
  int64_t i_id = 0;  ///< key-frame id
  int64_t v_id = 0;  ///< owning video
  double score = 0.0;  ///< smaller = more similar
  /// Raw per-feature distances behind the combined score.
  std::map<FeatureKind, double> feature_distances;
};

/// One ranked video-level hit (DTW over key-frame sequences).
struct VideoQueryResult {
  int64_t v_id = 0;
  double score = 0.0;
};

/// Candidate-pruning statistics of the last query.
struct CandidateStats {
  size_t candidates = 0;  ///< key frames scored
  size_t total = 0;       ///< key frames in the store
};

/// \brief One key frame after the lock-free preparation stage: encoded
/// image bytes, range bucket and extracted features, but no ids yet
/// (ids are assigned at commit time so parallel preparation cannot
/// perturb them).
struct PreparedKeyFrame {
  /// Index of this key frame in the source frame sequence.
  size_t frame_index = 0;
  /// KEY_FRAMES.I_NAME ("<video name>#<frame index>").
  std::string i_name;
  /// Encoded image bytes (PNM or VJF per EngineOptions).
  std::vector<uint8_t> image;
  /// Range-finder bucket (§4.2).
  GrayRange range;
  /// MAJORREGIONS column value (0 when region growing is disabled).
  int64_t major_regions = 0;
  /// Extracted features for every enabled extractor.
  FeatureMap features;
};

/// \brief One video after preparation, ready for an atomic commit.
struct PreparedVideo {
  std::string name;
  std::vector<PreparedKeyFrame> keys;
  /// Re-encoded .vsv container bytes for the VIDEO column; empty when
  /// EngineOptions::store_video_blob is false.
  std::vector<uint8_t> video_blob;
};

/// Hook invoked by the query methods between pipeline stages (feature
/// extraction -> candidate selection -> ranking). Returning a non-OK
/// status aborts the query with that status before the next stage runs;
/// RetrievalService uses this for per-request deadlines/cancellation.
using QueryCheckpoint = std::function<Status()>;

/// \brief The CBVR system facade.
///
/// Thread-safety: the engine uses a reader/writer discipline over one
/// writer-preferring vr::SharedMutex. The query methods (QueryByImage,
/// QueryByImageSingleFeature, QueryByVideo, last_candidate_stats,
/// indexed_key_frames) take the lock shared and may run concurrently
/// with each other from any number of threads. The mutating methods
/// (IngestFrames, IngestVideoFile, RemoveVideo, CommitPrepared — and
/// ApplyRelevanceFeedback, which rewrites the scorer weights) take it
/// exclusive, while the ingest *preparation* methods (ExtractKeyFrames,
/// PrepareKeyFrame, EncodeVideoBlob) are lock-free and safe from any
/// thread. Callers never lock for those; they only need rw_lock()
/// when touching engine internals directly: scorer() mutation and all
/// VideoStore access through store() require the exclusive lock when
/// queries may be in flight. The range index and the columnar feature
/// cache (FeatureMatrix) are plain data guarded entirely by this lock —
/// ranking shards fanned out to the internal rank pool only read them
/// under the calling query's shared hold; the pager layer below is
/// additionally self-serializing (see pager.h) so stats snapshots never
/// race ingest I/O.
///
/// The lock→state relationships are annotated (GUARDED_BY(mutex_) on
/// the index/matrix/scorer state, REQUIRES on the locked helpers) and
/// verified by Clang's thread-safety analysis; the prose above is the
/// narrative, the annotations are the contract.
class RetrievalEngine {
 public:
  /// Opens (or creates) the engine over a database directory and warms
  /// the in-memory feature cache and range index from stored key frames.
  static Result<std::unique_ptr<RetrievalEngine>> Open(
      const std::string& dir, EngineOptions options = {});

  /// \name Ingestion (the Administrator role).
  /// @{
  /// Ingests decoded frames as one video; returns its v_id. Composes
  /// the staged ingest methods below: preparation runs lock-free, only
  /// CommitPrepared takes the writer-exclusive lock, so a long feature
  /// extraction never blocks concurrent queries.
  Result<int64_t> IngestFrames(const std::vector<Image>& frames,
                               const std::string& name);
  /// Ingests a .vsv file.
  Result<int64_t> IngestVideoFile(const std::string& path,
                                  const std::string& name);
  /// Removes a video and all of its key frames.
  Status RemoveVideo(int64_t v_id);
  /// @}

  /// \name Staged ingest (the building blocks of IngestPipeline).
  ///
  /// The three preparation methods are const, take no lock and touch
  /// only state that is immutable after Open (options, extractors, the
  /// key-frame detector) — they are safe to call concurrently from any
  /// number of threads, including while queries and commits run.
  /// CommitPrepared is the only mutating step; it takes the engine
  /// lock exclusive, assigns v_id/i_id in call order and publishes the
  /// video all-or-nothing. Feeding prepared videos to CommitPrepared
  /// in submission order therefore yields rows byte-identical to a
  /// serial IngestFrames loop (the determinism contract that
  /// tests/ingest_pipeline_test.cc enforces).
  /// @{
  /// Stage 1: key-frame detection (§4.1) over an ordered frame list.
  /// Counts the frames and detection time in ingest_stats().
  Result<std::vector<KeyFrame>> ExtractKeyFrames(
      const std::vector<Image>& frames) const;
  /// Stage 2: per-key-frame feature extraction, range bucketing and
  /// image encoding. Independent per key frame — fan this out.
  Result<PreparedKeyFrame> PrepareKeyFrame(const std::string& video_name,
                                           const KeyFrame& key) const;
  /// Stage 1b: re-encode the frames into the .vsv blob stored in the
  /// VIDEO column. Returns an empty blob when store_video_blob is off.
  Result<std::vector<uint8_t>> EncodeVideoBlob(
      const std::vector<Image>& frames) const;
  /// Stage 3: assign ids, persist the KEY_FRAMES rows (one batched
  /// journal sync) and the VIDEO_STORE row, and publish to the range
  /// index and feature cache. Holds the writer-exclusive lock for the
  /// whole persist + publish sequence; returns the new v_id.
  Result<int64_t> CommitPrepared(PreparedVideo video);
  /// @}

  /// Cumulative ingest counters (see ingest_stats.h). Thread-safe; the
  /// snapshot is internally consistent only when no ingest is racing.
  IngestStats ingest_stats() const;

  /// Cumulative query counters (see query_stats.h). Thread-safe; the
  /// snapshot is internally consistent only when no query is racing.
  QueryStats query_stats() const;

  /// Folds decode work performed outside the engine (IngestPipeline
  /// decodes .vsv files on its own workers) into ingest_stats().
  /// Thread-safe (lock-free).
  void AddDecodeWork(uint64_t ns) {
    ingest_counters_.decode_ns.fetch_add(ns, std::memory_order_relaxed);
  }

  /// \name Querying (the User role). Safe to call concurrently from
  /// many threads, including concurrently with ingest.
  /// @{
  /// Combined multi-feature ranking of the top \p k key frames. The
  /// optional \p checkpoint runs between pipeline stages; a non-OK
  /// return (e.g. DeadlineExceeded) aborts the query before the next
  /// stage — in particular, ranking never runs after an expired
  /// deadline.
  Result<std::vector<QueryResult>> QueryByImage(
      const Image& query, size_t k, const QueryCheckpoint& checkpoint = {});
  /// Ranking by a single feature (the per-feature columns of Table 1).
  Result<std::vector<QueryResult>> QueryByImageSingleFeature(
      const Image& query, FeatureKind kind, size_t k,
      const QueryCheckpoint& checkpoint = {});
  /// Video-to-video search: DTW over key-frame sequences with fused
  /// per-pair feature costs. The checkpoint additionally runs between
  /// per-video DTW alignments.
  Result<std::vector<VideoQueryResult>> QueryByVideo(
      const std::vector<Image>& query_frames, size_t k,
      const QueryCheckpoint& checkpoint = {});
  /// Query-by-stored-id fast path: ranks against the features already
  /// in the columnar cache for key frame \p i_id — no pixel decode, no
  /// extraction. Selection reuses the frame's stored range bucket.
  /// NotFound when the id is not indexed.
  Result<std::vector<QueryResult>> QueryByStoredId(
      int64_t i_id, size_t k, const QueryCheckpoint& checkpoint = {});
  /// @}

  /// Pruning statistics of the most recent query (a snapshot; under
  /// concurrent queries it reflects whichever query finished last).
  /// For a video query the counts accumulate across the whole clip —
  /// every (query key frame x stored frame) scoring counts — so
  /// service metrics stay honest for multi-frame queries.
  CandidateStats last_candidate_stats() const {
    CandidateStats stats;
    stats.candidates = last_candidates_.load(std::memory_order_relaxed);
    stats.total = last_total_.load(std::memory_order_relaxed);
    return stats;
  }

  /// Mutable fusion weights (defaults: all 1). Requires holding
  /// rw_lock() exclusive — take a WriterMutexLock on rw_lock() around
  /// both reads and writes when queries may be in flight
  /// (ApplyRelevanceFeedback does this for you).
  CombinedScorer* scorer() REQUIRES(mutex_) { return &scorer_; }

  /// The engine-wide reader/writer lock. Public API methods lock it
  /// internally; it is exposed for helpers that mutate engine-owned
  /// state from outside (scorer re-weighting, direct store() access).
  /// Lock hierarchy: always acquire this before any pager mutex, never
  /// after (see DESIGN.md "Service layer & threading model").
  SharedMutex& rw_lock() const RETURN_CAPABILITY(mutex_) { return mutex_; }

  /// The persistent store. The returned pointer itself is stable for
  /// the engine's lifetime; calls through it that may race queries
  /// need rw_lock() held exclusive (the pager layer below is
  /// self-serializing, so stats snapshots are always safe).
  VideoStore* store() { return store_.get(); }
  const EngineOptions& options() const { return options_; }

  /// Tables quarantined by a degraded (paranoid = false) open.
  const std::vector<TableDamage>& DamageReport() const EXCLUDES(mutex_) {
    ReaderMutexLock lock(mutex_);
    return store_->DamageReport();
  }

  /// Number of key frames currently indexed.
  size_t indexed_key_frames() const EXCLUDES(mutex_) {
    ReaderMutexLock lock(mutex_);
    return matrix_.rows();
  }

  /// Counters of the persisted matrix cache: file rows, tombstones,
  /// whether this open was warm (loaded from pages instead of a store
  /// scan), rewrites/appends since open. All-zero when persistence is
  /// disabled or was demoted after a persist failure.
  MatrixStore::Stats matrix_store_stats() const EXCLUDES(mutex_) {
    ReaderMutexLock lock(mutex_);
    return matrix_store_ != nullptr ? matrix_store_->stats()
                                    : MatrixStore::Stats{};
  }

 private:
  explicit RetrievalEngine(EngineOptions options)
      : options_(std::move(options)),
        key_frames_(options_.keyframe),
        index_(options_.range) {}

  /// Lock-free ingest counters behind ingest_stats(). Mutated from the
  /// const preparation methods, hence mutable atomics; times in ns.
  struct IngestCounters {
    std::atomic<uint64_t> videos_ingested{0};
    std::atomic<uint64_t> frames_decoded{0};
    std::atomic<uint64_t> keyframes_kept{0};
    std::atomic<uint64_t> decode_ns{0};
    std::atomic<uint64_t> extract_ns{0};
    std::atomic<uint64_t> commit_ns{0};
    std::array<std::atomic<uint64_t>, kNumFeatureKinds> extractor_ns{};
  };

  /// Lock-free query counters behind query_stats(); times in ns.
  struct QueryCounters {
    std::atomic<uint64_t> image_queries{0};
    std::atomic<uint64_t> video_queries{0};
    std::atomic<uint64_t> id_queries{0};
    std::atomic<uint64_t> sharded_ranks{0};
    std::atomic<uint64_t> candidates_scored{0};
    std::atomic<uint64_t> candidates_total{0};
    std::atomic<uint64_t> extract_ns{0};
    std::atomic<uint64_t> select_ns{0};
    std::atomic<uint64_t> rank_ns{0};
    std::atomic<uint64_t> two_stage_queries{0};
    std::atomic<uint64_t> coarse_candidates{0};
    std::atomic<uint64_t> two_stage_fallbacks{0};
    std::atomic<uint64_t> margin_kept{0};
  };

  /// Rebuilds the feature cache and range index from the store; runs
  /// under the exclusive lock purely to satisfy the guarded-state
  /// contract (Open is single-threaded).
  Status WarmCache() REQUIRES(mutex_);
  Result<FeatureMap> ExtractEnabled(
      const Image& img) const;

  /// A query frame after fused extraction: the feature bank, the gray
  /// histogram (the range finder's input — recomputing it from pixels
  /// would redo work the plan already did) and whether the extraction
  /// cache served it.
  struct ExtractedQuery {
    FeatureMap features;
    GrayHistogram histogram;
    bool cache_hit = false;
  };
  /// Extracts every enabled feature through the fused extraction plan,
  /// consulting the content-addressed cache first and inserting on a
  /// miss. Lock-free: plans come from the internal pool, the cache is
  /// internally synchronized. Optional \p timings receives the
  /// per-extractor / per-intermediate breakdown of a miss.
  Result<ExtractedQuery> ExtractWithPlan(
      const Image& img, ExtractionPlan::FrameTimings* timings = nullptr) const;
  /// Checks a fused plan out of the pool (creating one over the enabled
  /// extractors when the pool is empty). Plans hold per-thread scratch,
  /// so a plan is used by exactly one extraction at a time.
  std::unique_ptr<ExtractionPlan> AcquirePlan() const EXCLUDES(plan_mutex_);
  /// Returns a plan to the pool (drops it when the pool is full).
  void ReleasePlan(std::unique_ptr<ExtractionPlan> plan) const
      EXCLUDES(plan_mutex_);

  /// Bucket-pruned candidate rows of matrix_ for a query image; updates
  /// the last-query pruning stats.
  Result<std::vector<uint32_t>> SelectCandidates(const Image& query)
      REQUIRES_SHARED(mutex_);
  /// Same pruning from an already-known histogram (the fused extraction
  /// path) — avoids re-walking the query pixels.
  Result<std::vector<uint32_t>> SelectCandidatesByHistogram(
      const GrayHistogram& hist) REQUIRES_SHARED(mutex_);
  /// Same pruning from a precomputed bucket (the query-by-stored-id
  /// path, which has no pixels at all).
  Result<std::vector<uint32_t>> SelectCandidatesByRange(const GrayRange& range)
      REQUIRES_SHARED(mutex_);
  /// Shard count for ranking \p candidates rows (1 = serial).
  size_t NumRankShards(size_t candidates) const;
  /// Runs fn(shard) for every shard in [0, shards): shard 0 inline on
  /// the caller, the rest on rank_pool_ (TrySubmit with inline
  /// fallback), and waits for all of them. fn must not throw and must
  /// only read state guarded by the caller's shared lock (the analysis
  /// cannot follow the std::function hop, so fn must capture that
  /// state through local aliases bound while the lock is held).
  void RunSharded(size_t shards, const std::function<void(size_t)>& fn) const
      REQUIRES_SHARED(mutex_);
  /// Ranks candidate rows of matrix_. Dispatches to the two-stage path
  /// (coarse quantized scan, then RankExact over the survivors) when
  /// TwoStageEligible, otherwise ranks everything exactly.
  Result<std::vector<QueryResult>> Rank(
      const FeatureMap& query_features, const std::vector<uint32_t>& candidates,
      const std::vector<FeatureKind>& kinds, size_t k) const
      REQUIRES_SHARED(mutex_);
  /// The exact ranking kernel (the pre-two-stage Rank body): double
  /// distance columns, batch fusion, top-k partial sort.
  Result<std::vector<QueryResult>> RankExact(
      const FeatureMap& query_features, const std::vector<uint32_t>& candidates,
      const std::vector<FeatureKind>& kinds, size_t k) const
      REQUIRES_SHARED(mutex_);
  /// Whether this query may use the coarse quantized pre-selection: the
  /// option is on, the candidate set is large enough to benefit, the
  /// final score is batch-independent (single feature, or combined
  /// under NormalizationKind::kNone), and every queried column has a
  /// usable quantization range.
  bool TwoStageEligible(const std::vector<FeatureKind>& kinds,
                        size_t candidates, size_t k) const
      REQUIRES_SHARED(mutex_);
  /// What the coarse stage decided for one query.
  struct CoarseOutcome {
    /// Rows (in candidate order) the exact rerank must score. Empty
    /// and meaningless when fallback is set.
    std::vector<uint32_t> survivors;
    /// The coarse stage could not prune (a kind without a code kernel,
    /// a failed kernel precondition, or a margin wide enough to keep
    /// every candidate): run the exact scan over all candidates.
    bool fallback = false;
    /// Survivors beyond the keep target that the error margin forced
    /// the stage to retain (the price of the exactness guarantee).
    uint64_t margin_kept = 0;
  };
  /// Coarse stage: scores every candidate with the integer code-space
  /// kernels (weighted, unnormalized — under kNone fusion the combined
  /// score is a positive rescale of the weighted sum, so the survivor
  /// set is unchanged), then keeps each candidate whose certified
  /// lower bound does not exceed the \p keep-th smallest certified
  /// upper bound. Rows the kernels cannot bound (absent feature,
  /// length mismatch, uncertifiable row sum) are kept unconditionally.
  /// The survivor set provably contains the exact top-keep (a fortiori
  /// the top-k), independent of shard count.
  CoarseOutcome CoarseSelect(const FeatureMap& query_features,
                             const std::vector<uint32_t>& candidates,
                             const std::vector<FeatureKind>& kinds,
                             size_t keep) const REQUIRES_SHARED(mutex_);

  EngineOptions options_;
  KeyFrameExtractor key_frames_;  ///< stateless after construction
  /// Guards index_, matrix_, cache_by_id_, scorer_ and store_ mutation:
  /// shared for queries, exclusive for ingest/remove/feedback.
  mutable SharedMutex mutex_{LockLevel::kEngine, "engine_rw"};
  RangeBucketIndex index_ GUARDED_BY(mutex_);
  CombinedScorer scorer_ GUARDED_BY(mutex_);
  /// The unique_ptr is set once in Open; the *store* behind it is
  /// externally synchronized by this lock (see class comment).
  std::unique_ptr<VideoStore> store_ PT_GUARDED_BY(mutex_);
  std::vector<std::unique_ptr<FeatureExtractor>> extractors_;  ///< immutable after Open
  /// Columnar feature cache; rows are matrix row indices, ids resolve
  /// through cache_by_id_.
  FeatureMatrix matrix_ GUARDED_BY(mutex_);
  std::map<int64_t, size_t> cache_by_id_ GUARDED_BY(mutex_);
  /// Persisted matrix cache (null when persist_matrix is off, or after
  /// a persist failure demoted the cache to memory-only for this run —
  /// the next open sees a stale generation and rebuilds).
  std::unique_ptr<MatrixStore> matrix_store_ GUARDED_BY(mutex_);
  /// Live store generation, tracked incrementally across commits and
  /// removes so persisting never needs an O(N) KeyFrameCount() walk.
  MatrixStore::Generation matrix_gen_ GUARDED_BY(mutex_);
  /// Workers for sharded ranking; null when serial-only. Created at
  /// Open, immutable after — shard tasks only ever read query-local
  /// buffers plus matrix_ under the caller's shared lock.
  std::unique_ptr<ThreadPool> rank_pool_;
  /// Pool of reusable fused extraction plans. Each plan owns warm
  /// scratch (FFT twiddles, Gabor filter bank, arena) worth keeping
  /// across queries; the pool is a leaf mutex (never held while taking
  /// mutex_ or any pager lock).
  mutable Mutex plan_mutex_{LockLevel::kLeaf, "engine_plan_pool"};
  mutable std::vector<std::unique_ptr<ExtractionPlan>> plan_pool_
      GUARDED_BY(plan_mutex_);
  /// Content-addressed feature cache for query frames; internally
  /// synchronized (also a leaf). Null when capacity is 0.
  std::unique_ptr<ExtractionCache> extraction_cache_;
  std::atomic<size_t> last_candidates_{0};
  std::atomic<size_t> last_total_{0};
  mutable IngestCounters ingest_counters_;
  mutable QueryCounters query_counters_;
};

}  // namespace vr
