#include "features/feature_vector.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace vr {

const char* FeatureKindName(FeatureKind kind) {
  switch (kind) {
    case FeatureKind::kColorHistogram:
      return "histogram";
    case FeatureKind::kGlcm:
      return "glcm";
    case FeatureKind::kGabor:
      return "gabor";
    case FeatureKind::kTamura:
      return "tamura";
    case FeatureKind::kAutoCorrelogram:
      return "acc";
    case FeatureKind::kNaiveSignature:
      return "naive";
    case FeatureKind::kRegionGrowing:
      return "regions";
    case FeatureKind::kEdgeHistogram:
      return "edgehist";
    case FeatureKind::kColorMoments:
      return "moments";
    case FeatureKind::kColorSignature:
      return "colorsig";
  }
  return "unknown";
}

Result<FeatureKind> FeatureKindFromName(const std::string& name) {
  for (int i = 0; i < kNumFeatureKinds; ++i) {
    const FeatureKind kind = static_cast<FeatureKind>(i);
    if (name == FeatureKindName(kind)) return kind;
  }
  return Status::InvalidArgument("unknown feature kind: " + name);
}

std::string FeatureVector::ToString() const {
  std::string out = type_;
  out += ' ';
  out += std::to_string(values_.size());
  for (double v : values_) {
    out += ' ';
    out += FormatDouble(v);
  }
  return out;
}

Result<FeatureVector> FeatureVector::FromString(const std::string& text) {
  const std::vector<std::string> tokens = SplitWhitespace(text);
  if (tokens.size() < 2) {
    return Status::Corruption("feature string too short");
  }
  VR_ASSIGN_OR_RETURN(int64_t n, ParseInt64(tokens[1]));
  if (n < 0 || static_cast<size_t>(n) != tokens.size() - 2) {
    return Status::Corruption(StringPrintf(
        "feature string declares %lld values but carries %zu",
        static_cast<long long>(n), tokens.size() - 2));
  }
  std::vector<double> values(static_cast<size_t>(n));
  for (size_t i = 0; i < values.size(); ++i) {
    VR_ASSIGN_OR_RETURN(values[i], ParseDouble(tokens[i + 2]));
  }
  return FeatureVector(tokens[0], std::move(values));
}

double FeatureVector::Sum() const {
  double s = 0.0;
  for (double v : values_) s += v;
  return s;
}

double FeatureVector::Norm() const {
  double s = 0.0;
  for (double v : values_) s += v * v;
  return std::sqrt(s);
}

void FeatureVector::NormalizeL1() {
  const double s = Sum();
  if (s == 0.0) return;
  for (double& v : values_) v /= s;
}

double FeatureExtractor::DistanceSpan(const double* a, size_t na,
                                      const double* b, size_t nb) const {
  // Default: L2 over the common prefix; dimension mismatch contributes
  // the missing mass.
  const size_t n = std::min(na, nb);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  for (size_t i = n; i < na; ++i) acc += a[i] * a[i];
  for (size_t i = n; i < nb; ++i) acc += b[i] * b[i];
  return std::sqrt(acc);
}

void FeatureExtractor::BatchDistance(const double* query, size_t qn,
                                     const double* rows, size_t stride,
                                     const uint32_t* lengths,
                                     const uint32_t* indices, size_t count,
                                     double* out) const {
  for (size_t i = 0; i < count; ++i) {
    const uint32_t r = indices[i];
    out[i] = DistanceSpan(query, qn, rows + static_cast<size_t>(r) * stride,
                          lengths[r]);
  }
}

}  // namespace vr
