#include "features/edge_histogram.h"

#include <algorithm>
#include <cmath>

#include "features/plan/frame_context.h"
#include "imaging/color.h"
#include "imaging/float_image.h"
#include "similarity/metrics.h"

namespace vr {

EdgeHistogram::EdgeHistogram(int grid, double edge_threshold)
    : grid_(std::clamp(grid, 1, 16)), edge_threshold_(edge_threshold) {}

Result<FeatureVector> EdgeHistogram::Extract(const Image& img) const {
  if (img.empty()) return Status::InvalidArgument("empty image");
  if (img.width() < 2 * grid_ || img.height() < 2 * grid_) {
    return Status::InvalidArgument("image too small for edge grid");
  }
  return FromGrayFloat(FloatImage::FromImage(img));
}

uint32_t EdgeHistogram::SharedIntermediates() const {
  return static_cast<uint32_t>(Intermediate::kGrayFloat);
}

Result<FeatureVector> EdgeHistogram::ExtractShared(const Image& img,
                                                   PlanContext& ctx) const {
  if (img.empty()) return Status::InvalidArgument("empty image");
  if (img.width() < 2 * grid_ || img.height() < 2 * grid_) {
    return Status::InvalidArgument("image too small for edge grid");
  }
  return FromGrayFloat(ctx.GrayFloat());
}

Result<FeatureVector> EdgeHistogram::FromGrayFloat(
    const FloatImage& gray) const {
  // MPEG-7 EHD block filters over 2x2 means a, b / c, d:
  //   vertical:    |a + c - b - d|
  //   horizontal:  |a + b - c - d|
  //   45 deg:      sqrt2 * |a - d|
  //   135 deg:     sqrt2 * |b - c|
  //   non-dir:     |a - b - c + d| * 2   (high-frequency check)
  std::vector<double> feature(dimensions(), 0.0);
  std::vector<double> block_totals(static_cast<size_t>(grid_) * grid_, 0.0);
  const double sqrt2 = std::sqrt(2.0);
  for (int by = 0; by + 1 < gray.height(); by += 2) {
    for (int bx = 0; bx + 1 < gray.width(); bx += 2) {
      const double a = gray.At(bx, by);
      const double b = gray.At(bx + 1, by);
      const double c = gray.At(bx, by + 1);
      const double d = gray.At(bx + 1, by + 1);
      const double responses[kEdgeTypes] = {
          std::fabs(a + c - b - d),       // vertical
          std::fabs(a + b - c - d),       // horizontal
          sqrt2 * std::fabs(a - d),       // 45 degrees
          sqrt2 * std::fabs(b - c),       // 135 degrees
          2.0 * std::fabs(a - b - c + d)  // non-directional
      };
      int best = 0;
      for (int t = 1; t < kEdgeTypes; ++t) {
        if (responses[t] > responses[best]) best = t;
      }
      const int gx = std::min(grid_ - 1, bx * grid_ / gray.width());
      const int gy = std::min(grid_ - 1, by * grid_ / gray.height());
      const size_t cell = static_cast<size_t>(gy) * grid_ + gx;
      ++block_totals[cell];
      if (responses[best] >= edge_threshold_) {
        feature[cell * kEdgeTypes + static_cast<size_t>(best)] += 1.0;
      }
    }
  }
  // Normalize per sub-image so frame size cancels out.
  for (size_t cell = 0; cell < block_totals.size(); ++cell) {
    if (block_totals[cell] <= 0) continue;
    for (int t = 0; t < kEdgeTypes; ++t) {
      feature[cell * kEdgeTypes + static_cast<size_t>(t)] /=
          block_totals[cell];
    }
  }
  return FeatureVector(name(), std::move(feature));
}

double EdgeHistogram::DistanceSpan(const double* a, size_t na, const double* b,
                                   size_t nb) const {
  // L1, the MPEG-7 matching measure for EHD.
  return L1Distance(a, na, b, nb);
}

void EdgeHistogram::BatchDistance(const double* query, size_t qn,
                                  const double* rows, size_t stride,
                                  const uint32_t* lengths,
                                  const uint32_t* indices, size_t count,
                                  double* out) const {
  BatchL1Distance(query, qn, rows, stride, lengths, indices, count, out);
}

}  // namespace vr
