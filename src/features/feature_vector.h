/// \file feature_vector.h
/// \brief Feature vectors and the extractor interface.
///
/// Feature vectors serialize to/from a whitespace-delimited string
/// ("<type> <n> v0 v1 ..."), mirroring the VARCHAR feature columns the
/// paper stores in the KEY_FRAMES table (SCH, GLCM, GABOR, TAMURA).

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "imaging/image.h"
#include "similarity/code_kernels.h"
#include "util/status.h"

namespace vr {

class PlanContext;  // features/plan/frame_context.h

/// The feature families. The first seven are the paper's (Table 1
/// evaluates them individually); the last two implement the paper's
/// stated future work of "integrating more features".
enum class FeatureKind : int {
  kColorHistogram = 0,
  kGlcm = 1,
  kGabor = 2,
  kTamura = 3,
  kAutoCorrelogram = 4,
  kNaiveSignature = 5,
  kRegionGrowing = 6,
  // Extensions beyond the paper:
  kEdgeHistogram = 7,
  kColorMoments = 8,
  kColorSignature = 9,
};

inline constexpr int kNumFeatureKinds = 10;

/// The features the paper itself ships (extensions excluded).
inline constexpr int kNumPaperFeatureKinds = 7;

/// Short stable name ("histogram", "glcm", ...).
const char* FeatureKindName(FeatureKind kind);

/// Parses a FeatureKindName back to the enum.
Result<FeatureKind> FeatureKindFromName(const std::string& name);

/// \brief A typed dense feature vector.
class FeatureVector {
 public:
  FeatureVector() = default;
  FeatureVector(std::string type, std::vector<double> values)
      : type_(std::move(type)), values_(std::move(values)) {}

  const std::string& type() const { return type_; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& values() { return values_; }
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double operator[](size_t i) const { return values_[i]; }

  /// "<type> <n> v0 v1 ... v{n-1}" with round-trippable doubles.
  std::string ToString() const;

  /// Parses the ToString() format.
  static Result<FeatureVector> FromString(const std::string& text);

  /// Sum of values.
  double Sum() const;

  /// L2 norm.
  double Norm() const;

  /// Scales values so they sum to 1 (no-op when the sum is 0).
  void NormalizeL1();

  bool operator==(const FeatureVector&) const = default;

 private:
  std::string type_;
  std::vector<double> values_;
};

/// Extracted features keyed by family (the row-oriented form used at
/// ingest; retrieval's FeatureMatrix is its columnar transpose).
using FeatureMap = std::map<FeatureKind, FeatureVector>;

/// \brief Interface implemented by each of the paper's extractors.
class FeatureExtractor {
 public:
  virtual ~FeatureExtractor() = default;

  /// Which Table-1 feature family this extractor implements.
  virtual FeatureKind kind() const = 0;

  /// Stable name; matches FeatureKindName(kind()).
  const char* name() const { return FeatureKindName(kind()); }

  /// Computes the feature of \p img.
  virtual Result<FeatureVector> Extract(const Image& img) const = 0;

  /// Shared intermediates (bits of plan::Intermediate) this extractor
  /// reads from a PlanContext in ExtractShared; 0 when it derives
  /// everything itself. The ExtractionPlan unions these across its
  /// registered extractors and materializes each intermediate exactly
  /// once per frame.
  virtual uint32_t SharedIntermediates() const { return 0; }

  /// Fused extraction: like Extract, but shared intermediates come from
  /// \p ctx (memoized per frame) and temporaries may use ctx's arena
  /// and per-kind scratch slot. Must return values bit-identical to
  /// Extract(img) — tests/extraction_plan_test.cc enforces this for
  /// every registered kind. The default delegates to Extract.
  virtual Result<FeatureVector> ExtractShared(const Image& img,
                                              PlanContext& ctx) const {
    (void)ctx;
    return Extract(img);
  }

  /// Dissimilarity between two vectors produced by this extractor.
  /// Smaller is more similar; must be >= 0 and 0 for identical inputs.
  /// Delegates to DistanceSpan — the two are always bit-identical.
  double Distance(const FeatureVector& a, const FeatureVector& b) const {
    return DistanceSpan(a.values().data(), a.size(), b.values().data(),
                        b.size());
  }

  /// The same dissimilarity over raw value arrays — the columnar fast
  /// path used when candidate features live in a FeatureMatrix column
  /// instead of per-frame FeatureVectors. Extractors override this (not
  /// Distance) so both entry points share one implementation.
  virtual double DistanceSpan(const double* a, size_t na, const double* b,
                              size_t nb) const;

  /// Which integer code-space kernel family (similarity/code_kernels.h)
  /// approximates this extractor's metric over the quantized shadow
  /// columns, with the parameters (block size, element ranges, wrap)
  /// matching DistanceSpan's arithmetic exactly — the per-family error
  /// bounds are only valid for a spec that mirrors the real metric.
  /// The default (CodeMetricFamily::kNone) opts the kind out of the
  /// coarse stage; queries touching it fall back to the exact scan.
  virtual CodeMetricSpec code_metric() const { return {}; }

  /// Batch form over a strided column: for each i in [0, count),
  /// out[i] = DistanceSpan(query, row indices[i]) where row j starts at
  /// rows + j * stride and holds lengths[j] values. The default loops
  /// DistanceSpan; extractors whose metric matches a batch kernel in
  /// similarity/metrics.h override this to dispatch there. Must stay
  /// bit-identical to the per-candidate loop.
  virtual void BatchDistance(const double* query, size_t qn,
                             const double* rows, size_t stride,
                             const uint32_t* lengths, const uint32_t* indices,
                             size_t count, double* out) const;
};

}  // namespace vr
