/// \file auto_correlogram.h
/// \brief Auto color correlogram feature (paper §4.7).

#pragma once

#include "features/feature_vector.h"

namespace vr {

/// \brief Auto color correlogram (Huang et al. 1997).
///
/// Colors are quantized in HSV space into 256 bins (16 hue x 4 sat x
/// 4 val, as in the paper's pseudo-code). For each color c and each
/// chessboard distance d in [1, max_distance], the feature stores the
/// probability that a pixel at distance d from a pixel of color c also
/// has color c. Layout: [c0d1..c0dD, c1d1..c1dD, ...], 256 * D values.
class AutoColorCorrelogram : public FeatureExtractor {
 public:
  explicit AutoColorCorrelogram(int max_distance = 4);

  FeatureKind kind() const override { return FeatureKind::kAutoCorrelogram; }
  Result<FeatureVector> Extract(const Image& img) const override;
  uint32_t SharedIntermediates() const override;
  Result<FeatureVector> ExtractShared(const Image& img,
                                      PlanContext& ctx) const override;
  double DistanceSpan(const double* a, size_t na, const double* b,
                      size_t nb) const override;
  /// d1 is 2-Lipschitz per element over the non-negative probabilities
  /// this extractor produces, giving a row-independent error bound.
  CodeMetricSpec code_metric() const override {
    return {.family = CodeMetricFamily::kD1};
  }

  int max_distance() const { return max_distance_; }

 private:
  int max_distance_;
};

}  // namespace vr
