/// \file color_histogram.h
/// \brief Simple color histogram (paper §4.5, the SCH column).

#pragma once

#include "features/feature_vector.h"

namespace vr {

/// Quantization used by SimpleColorHistogram.
enum class HistogramSpace {
  /// 256-bin quantized RGB: 8 levels R x 8 levels G x 4 levels B.
  /// This matches the paper's 256-value "RGB 256" output string.
  kRgb256,
  /// 256-bin gray-level histogram.
  kGray256,
  /// 256-bin quantized HSV (16 x 4 x 4).
  kHsv256,
};

/// \brief The paper's simple color histogram feature.
///
/// The color space is quantized into a finite number of discrete levels
/// and each level becomes a bin; the histogram counts pixels per bin
/// (§4.5). Distances are L1 over L1-normalized histograms so image size
/// does not matter.
class SimpleColorHistogram : public FeatureExtractor {
 public:
  explicit SimpleColorHistogram(HistogramSpace space = HistogramSpace::kRgb256)
      : space_(space) {}

  FeatureKind kind() const override { return FeatureKind::kColorHistogram; }
  Result<FeatureVector> Extract(const Image& img) const override;
  uint32_t SharedIntermediates() const override;
  Result<FeatureVector> ExtractShared(const Image& img,
                                      PlanContext& ctx) const override;
  double DistanceSpan(const double* a, size_t na, const double* b,
                      size_t nb) const override;
  /// The metric normalizes both sides per call, so the coarse kernel
  /// reconstructs each row's sum from its code sum.
  CodeMetricSpec code_metric() const override {
    return {.family = CodeMetricFamily::kNormalizedL1};
  }

  HistogramSpace space() const { return space_; }

  /// Bin index of one pixel under the configured quantization.
  int Quantize(Rgb pixel) const;

 private:
  HistogramSpace space_;
};

}  // namespace vr
