#include "features/color_signature.h"

#include <algorithm>

#include "similarity/metrics.h"

namespace vr {

ColorSignatureFeature::ColorSignatureFeature(int clusters)
    : clusters_(std::clamp(clusters, 1, 64)) {}

FeatureVector ColorSignatureFeature::Flatten(const Signature& signature) {
  std::vector<double> values;
  values.reserve(signature.size() * 4);
  for (const SignaturePoint& p : signature) {
    values.push_back(p.weight);
    values.push_back(p.position[0]);
    values.push_back(p.position[1]);
    values.push_back(p.position[2]);
  }
  return FeatureVector(FeatureKindName(FeatureKind::kColorSignature),
                       std::move(values));
}

Result<Signature> ColorSignatureFeature::Unflatten(const FeatureVector& fv) {
  if (fv.size() % 4 != 0 || fv.empty()) {
    return Status::Corruption("color signature vector length not 4k");
  }
  Signature out;
  out.reserve(fv.size() / 4);
  for (size_t i = 0; i + 3 < fv.size(); i += 4) {
    SignaturePoint p;
    p.weight = fv[i];
    p.position = {fv[i + 1], fv[i + 2], fv[i + 3]};
    out.push_back(p);
  }
  return out;
}

Result<FeatureVector> ColorSignatureFeature::Extract(const Image& img) const {
  VR_ASSIGN_OR_RETURN(Signature signature,
                      MakeColorSignature(img, clusters_));
  return Flatten(signature);
}

double ColorSignatureFeature::DistanceSpan(const double* a, size_t na,
                                           const double* b, size_t nb) const {
  // Unflatten wants FeatureVectors; materialize them from the spans. The
  // EMD solver dominates the cost, so the copies don't matter.
  const FeatureVector fa(name(), std::vector<double>(a, a + na));
  const FeatureVector fb(name(), std::vector<double>(b, b + nb));
  Result<Signature> sa = Unflatten(fa);
  Result<Signature> sb = Unflatten(fb);
  if (sa.ok() && sb.ok()) {
    Result<double> emd = EmdSignatureDistance(*sa, *sb);
    if (emd.ok()) return std::max(0.0, *emd);
  }
  // Malformed vectors fall back to a plain vector distance so ranking
  // still degrades gracefully instead of erroring mid-query.
  return L2Distance(a, na, b, nb);
}

}  // namespace vr
