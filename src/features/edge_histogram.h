/// \file edge_histogram.h
/// \brief MPEG-7-style edge histogram descriptor (extension feature).
///
/// Implements the paper's stated future work ("integrating more
/// features"): the frame is divided into a grid of sub-images, each
/// sub-image is tiled into 2x2 blocks, and every block is classified as
/// one of five edge types (vertical, horizontal, 45 deg, 135 deg,
/// non-directional) or edgeless. The feature is the per-sub-image
/// normalized count of each edge type.

#pragma once

#include "features/feature_vector.h"

namespace vr {

class FloatImage;

/// \brief Local edge-type histogram over a grid of sub-images.
class EdgeHistogram : public FeatureExtractor {
 public:
  /// \p grid: sub-images per axis (default 4 -> 16 sub-images x 5 types
  /// = 80 dims, the MPEG-7 EHD layout).
  /// \p edge_threshold: minimum filter response for a block to count as
  /// an edge at all.
  EdgeHistogram(int grid = 4, double edge_threshold = 11.0);

  FeatureKind kind() const override { return FeatureKind::kEdgeHistogram; }
  Result<FeatureVector> Extract(const Image& img) const override;
  uint32_t SharedIntermediates() const override;
  Result<FeatureVector> ExtractShared(const Image& img,
                                      PlanContext& ctx) const override;
  double DistanceSpan(const double* a, size_t na, const double* b,
                      size_t nb) const override;
  /// Raw L1: the canonical integer-SAD coarse kernel.
  CodeMetricSpec code_metric() const override {
    return {.family = CodeMetricFamily::kL1};
  }
  /// L1 is covered by a batch kernel; dispatch the whole column there.
  void BatchDistance(const double* query, size_t qn, const double* rows,
                     size_t stride, const uint32_t* lengths,
                     const uint32_t* indices, size_t count,
                     double* out) const override;

  static constexpr int kEdgeTypes = 5;
  size_t dimensions() const {
    return static_cast<size_t>(grid_) * grid_ * kEdgeTypes;
  }

 private:
  /// Block classification + per-cell normalization from the float gray
  /// plane. Extract and ExtractShared both funnel here, so the paths
  /// are bit-identical by construction.
  Result<FeatureVector> FromGrayFloat(const FloatImage& gray) const;

  int grid_;
  double edge_threshold_;
};

}  // namespace vr
