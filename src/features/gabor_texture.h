/// \file gabor_texture.h
/// \brief Gabor filter-bank texture feature (paper §4.4).

#pragma once

#include "features/feature_vector.h"

namespace vr {

/// \brief Mean/std of Gabor filter responses over M scales x N orientations.
///
/// The paper's feature is 60 values: for each of M=5 scales and N=6
/// orientations, the mean and the standard deviation of the filter
/// response magnitude. Filtering runs in the frequency domain: the gray
/// image is resized to a power-of-two raster, FFT'd once, each filter is
/// an analytic (one-sided) Gaussian in frequency space, and one inverse
/// FFT per filter yields the complex response. The input is normalized to
/// zero mean / unit variance first, for illumination invariance.
class GaborTexture : public FeatureExtractor {
 public:
  GaborTexture(int scales = 5, int orientations = 6, int working_size = 128);

  FeatureKind kind() const override { return FeatureKind::kGabor; }
  Result<FeatureVector> Extract(const Image& img) const override;
  uint32_t SharedIntermediates() const override;
  Result<FeatureVector> ExtractShared(const Image& img,
                                      PlanContext& ctx) const override;
  /// Plain L2 (the inherited default DistanceSpan); block 0 = one
  /// block over the whole vector. Length-mismatched rows are forced by
  /// the kernel, which covers the default metric's tail-mass terms.
  CodeMetricSpec code_metric() const override {
    return {.family = CodeMetricFamily::kL2Blocked};
  }

  int scales() const { return scales_; }
  int orientations() const { return orientations_; }
  /// Feature dimensionality = 2 * scales * orientations.
  size_t dimensions() const {
    return 2 * static_cast<size_t>(scales_) * orientations_;
  }

 private:
  int scales_;
  int orientations_;
  int working_size_;
};

}  // namespace vr
