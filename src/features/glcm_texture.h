/// \file glcm_texture.h
/// \brief Gray-level co-occurrence matrix texture feature (paper §4.3).

#pragma once

#include "features/feature_vector.h"

namespace vr {

/// \brief GLCM texture statistics.
///
/// Builds the symmetric gray-level co-occurrence matrix at the given
/// pixel offset and emits the paper's six values in order:
/// [pixelCounter, ASM (energy), contrast, correlation, IDM (homogeneity),
/// entropy]. The paper's pseudo-code accumulates correlation with a
/// partial-sum denominator (a transcription bug); we compute the standard
/// normalized correlation in [-1, 1].
class GlcmTexture : public FeatureExtractor {
 public:
  /// \p step is the horizontal co-occurrence offset (the paper's `step`).
  /// \p levels quantizes gray values to reduce matrix sparsity.
  explicit GlcmTexture(int step = 1, int levels = 256);

  FeatureKind kind() const override { return FeatureKind::kGlcm; }
  Result<FeatureVector> Extract(const Image& img) const override;
  uint32_t SharedIntermediates() const override;
  Result<FeatureVector> ExtractShared(const Image& img,
                                      PlanContext& ctx) const override;
  double DistanceSpan(const double* a, size_t na, const double* b,
                      size_t nb) const override;
  /// Canberra over the five texture stats (pixelCounter excluded),
  /// mirroring DistanceSpan's [kAsm, kStatCount) loop.
  CodeMetricSpec code_metric() const override {
    return {.family = CodeMetricFamily::kCanberraL1,
            .canberra_begin = kAsm,
            .canberra_end = kStatCount};
  }

  /// Positions of the stats within the feature vector.
  enum : size_t {
    kPixelCounter = 0,
    kAsm = 1,
    kContrast = 2,
    kCorrelation = 3,
    kIdm = 4,
    kEntropy = 5,
    kStatCount = 6,
  };

 private:
  /// Tabulates co-occurrences from \p gray into \p glcm (a zeroed
  /// levels*levels buffer) and computes the statistics. Both Extract and
  /// ExtractShared funnel here, so the two paths are bit-identical by
  /// construction.
  Result<FeatureVector> FromGrayBuffer(const Image& gray, double* glcm,
                                       size_t levels) const;

  int step_;
  int levels_;
};

}  // namespace vr
