/// \file color_signature.h
/// \brief Color-signature feature with EMD distance (extension).
///
/// Wraps the k-means color signature + exact signature EMD
/// (similarity/emd_signature.h) in the FeatureExtractor interface, so
/// Rubner-style EMD retrieval plugs into the engine, the store and the
/// combined scorer like any other feature. The vector layout flattens
/// the signature as [w, r, g, b] per cluster.

#pragma once

#include "features/feature_vector.h"
#include "similarity/emd_signature.h"

namespace vr {

/// \brief k-means color signature; distances are exact EMD.
class ColorSignatureFeature : public FeatureExtractor {
 public:
  explicit ColorSignatureFeature(int clusters = 8);

  FeatureKind kind() const override { return FeatureKind::kColorSignature; }
  Result<FeatureVector> Extract(const Image& img) const override;
  double DistanceSpan(const double* a, size_t na, const double* b,
                      size_t nb) const override;

  /// Flattens a signature into the vector layout.
  static FeatureVector Flatten(const Signature& signature);

  /// Parses the vector layout back into a signature; Corruption if the
  /// length is not a multiple of 4.
  static Result<Signature> Unflatten(const FeatureVector& fv);

 private:
  int clusters_;
};

}  // namespace vr
