#include "features/tamura_texture.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "features/plan/frame_context.h"
#include "imaging/color.h"
#include "imaging/filter.h"
#include "imaging/resize.h"

namespace vr {

TamuraTexture::TamuraTexture(int max_scale, int dir_bins, double dir_threshold)
    : max_scale_(std::clamp(max_scale, 1, 7)),
      dir_bins_(std::max(4, dir_bins)),
      dir_threshold_(dir_threshold) {}

Result<FeatureVector> TamuraTexture::Extract(const Image& img) const {
  if (img.empty()) return Status::InvalidArgument("empty image");
  return FromGray(ToGray(img));
}

uint32_t TamuraTexture::SharedIntermediates() const {
  return static_cast<uint32_t>(Intermediate::kGray);
}

Result<FeatureVector> TamuraTexture::ExtractShared(const Image& img,
                                                   PlanContext& ctx) const {
  if (img.empty()) return Status::InvalidArgument("empty image");
  return FromGray(ctx.Gray());
}

Result<FeatureVector> TamuraTexture::FromGray(const Image& gray_in) const {
  // Bound the working size so coarseness windows stay meaningful and the
  // extractor stays fast on large frames.
  const Image* gray = &gray_in;
  Image resized;
  if (gray->width() > 256 || gray->height() > 256) {
    const double s =
        256.0 / std::max(gray->width(), gray->height());
    resized = Resize(*gray, std::max(16, static_cast<int>(gray->width() * s)),
                     std::max(16, static_cast<int>(gray->height() * s)),
                     ResizeFilter::kBilinear);
    gray = &resized;
  }
  const FloatImage f = FloatImage::FromImage(*gray);
  const int w = f.width();
  const int h = f.height();
  const size_t pixels = static_cast<size_t>(w) * h;

  // --- Coarseness -------------------------------------------------------
  // A_k = window means; E_k = |A_k(x + 2^{k-1}) - A_k(x - 2^{k-1})| along
  // each axis; best scale per pixel maximizes E; coarseness = mean 2^best.
  std::vector<FloatImage> averages;
  averages.reserve(static_cast<size_t>(max_scale_));
  for (int k = 1; k <= max_scale_; ++k) {
    averages.push_back(NeighborhoodAverage(f, k));
  }
  double coarseness_sum = 0.0;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      double best_e = -1.0;
      int best_k = 1;
      for (int k = 1; k <= max_scale_; ++k) {
        const FloatImage& a = averages[static_cast<size_t>(k - 1)];
        const int half = 1 << (k - 1);
        const double eh = std::fabs(a.AtClamped(x + half, y) -
                                    a.AtClamped(x - half, y));
        const double ev = std::fabs(a.AtClamped(x, y + half) -
                                    a.AtClamped(x, y - half));
        const double e = std::max(eh, ev);
        if (e > best_e) {
          best_e = e;
          best_k = k;
        }
      }
      coarseness_sum += static_cast<double>(1 << best_k);
    }
  }
  const double coarseness = coarseness_sum / static_cast<double>(pixels);

  // --- Contrast -----------------------------------------------------------
  // sigma / kurtosis^(1/4), with kurtosis = mu4 / sigma^4.
  double mean = 0.0;
  for (float v : f.data()) mean += v;
  mean /= static_cast<double>(pixels);
  double m2 = 0.0;
  double m4 = 0.0;
  for (float v : f.data()) {
    const double d = v - mean;
    m2 += d * d;
    m4 += d * d * d * d;
  }
  m2 /= static_cast<double>(pixels);
  m4 /= static_cast<double>(pixels);
  double contrast = 0.0;
  if (m2 > 1e-12) {
    const double kurtosis = m4 / (m2 * m2);
    contrast = std::sqrt(m2) / std::pow(kurtosis, 0.25);
  }

  // --- Directionality -----------------------------------------------------
  const GradientField g = Sobel(f);
  std::vector<double> dir(static_cast<size_t>(dir_bins_), 0.0);
  double dir_total = 0.0;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (g.magnitude.At(x, y) < dir_threshold_) continue;
      double theta =
          std::atan2(g.dy.At(x, y), g.dx.At(x, y));  // [-pi, pi]
      if (theta < 0) theta += M_PI;                  // fold to [0, pi)
      if (theta >= M_PI) theta -= M_PI;
      const int bin = std::min(
          dir_bins_ - 1, static_cast<int>(theta / M_PI * dir_bins_));
      dir[static_cast<size_t>(bin)] += 1.0;
      dir_total += 1.0;
    }
  }
  if (dir_total > 0) {
    for (double& d : dir) d /= dir_total;
  }

  std::vector<double> feature;
  feature.reserve(2 + dir.size());
  feature.push_back(coarseness);
  feature.push_back(contrast);
  feature.insert(feature.end(), dir.begin(), dir.end());
  return FeatureVector(name(), std::move(feature));
}

double TamuraTexture::DistanceSpan(const double* a, size_t na, const double* b,
                                   size_t nb) const {
  if (na < kDirStart || nb < kDirStart) {
    return FeatureExtractor::DistanceSpan(a, na, b, nb);
  }
  // Canberra over coarseness & contrast (scale-free), plus L1 over the
  // normalized directionality histogram. Each component is in [0, 1]-ish,
  // weighted equally.
  double acc = 0.0;
  for (size_t i = 0; i < kDirStart; ++i) {
    const double den = std::fabs(a[i]) + std::fabs(b[i]);
    if (den > 0) acc += std::fabs(a[i] - b[i]) / den;
  }
  const size_t n = std::min(na, nb);
  double dir_l1 = 0.0;
  for (size_t i = kDirStart; i < n; ++i) dir_l1 += std::fabs(a[i] - b[i]);
  return acc + dir_l1;
}

}  // namespace vr
