/// \file region_growing.h
/// \brief Simple region growing segmentation feature (paper §4.8).

#pragma once

#include "features/feature_vector.h"
#include "imaging/image.h"

namespace vr {

/// \brief Connected-component statistics after the paper's preprocessing.
struct RegionStats {
  int num_regions = 0;       ///< all connected components (fg + bg)
  int num_holes = 0;         ///< background (0-valued) components
  int num_major_regions = 0; ///< components covering >= the major fraction
};

/// \brief Stack-based region growing over the binarized frame.
///
/// Preprocessing follows the paper: gray conversion (their
/// {0.114, 0.587, 0.299} band combine), binarization at the
/// minimum-fuzziness (Huang) threshold, then dilate / erode / erode /
/// dilate with the 3x3-ones-in-5x5 kernel. Labeling grows 8-connected
/// regions of equal binary value; components of zeros count as holes.
class SimpleRegionGrowing : public FeatureExtractor {
 public:
  /// \p major_fraction: a region is "major" when it covers at least this
  /// fraction of the frame (the paper reports "no. of max regions").
  explicit SimpleRegionGrowing(double major_fraction = 0.01);

  FeatureKind kind() const override { return FeatureKind::kRegionGrowing; }
  Result<FeatureVector> Extract(const Image& img) const override;
  uint32_t SharedIntermediates() const override;
  Result<FeatureVector> ExtractShared(const Image& img,
                                      PlanContext& ctx) const override;
  double DistanceSpan(const double* a, size_t na, const double* b,
                      size_t nb) const override;
  /// Canberra over the whole vector (the defaulted range clamps to the
  /// query length).
  CodeMetricSpec code_metric() const override {
    return {.family = CodeMetricFamily::kCanberraL1};
  }

  /// Runs preprocessing + labeling and returns the raw statistics.
  Result<RegionStats> Analyze(const Image& img) const;

  /// The preprocessed binary image (for tests and the inspector example).
  Result<Image> Preprocess(const Image& img) const;

  enum : size_t {
    kNumRegions = 0,
    kNumHoles = 1,
    kMajorRegions = 2,
  };

 private:
  /// Trivially-copyable grow-stack element (arena-allocatable).
  struct Pt {
    int x;
    int y;
  };

  /// Connected-component labeling over \p binary. \p labels must be a
  /// zero-initialized w*h buffer (0 = unlabeled; regions number from 1)
  /// and \p stack a w*h scratch buffer (each pixel is pushed at most
  /// once). Extract and ExtractShared both funnel here, so the paths
  /// are bit-identical by construction.
  RegionStats LabelRegions(const Image& binary, int* labels,
                           Pt* stack) const;

  double major_fraction_;
};

}  // namespace vr
