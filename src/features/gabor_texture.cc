#include "features/gabor_texture.h"

#include <algorithm>
#include <cmath>

#include "imaging/color.h"
#include "imaging/fft.h"
#include "imaging/resize.h"

namespace vr {

GaborTexture::GaborTexture(int scales, int orientations, int working_size)
    : scales_(std::max(1, scales)),
      orientations_(std::max(1, orientations)),
      working_size_(static_cast<int>(
          NextPowerOfTwo(static_cast<size_t>(std::max(16, working_size))))) {}

Result<FeatureVector> GaborTexture::Extract(const Image& img) const {
  if (img.empty()) return Status::InvalidArgument("empty image");

  // Gray, fixed working size, zero-mean unit-variance.
  const Image small =
      Resize(ToGray(img), working_size_, working_size_, ResizeFilter::kBilinear);
  FloatImage f = FloatImage::FromImage(small);
  double mean = 0.0;
  for (float v : f.data()) mean += v;
  mean /= static_cast<double>(f.data().size());
  double var = 0.0;
  for (float v : f.data()) {
    const double d = v - mean;
    var += d * d;
  }
  var /= static_cast<double>(f.data().size());
  const double inv_std = var > 1e-12 ? 1.0 / std::sqrt(var) : 0.0;
  for (float& v : f.data()) {
    v = static_cast<float>((v - mean) * inv_std);
  }

  ComplexImage spectrum = ToComplexPadded(f, working_size_, working_size_);
  VR_RETURN_NOT_OK(Fft2D(&spectrum, /*inverse=*/false));

  const int w = spectrum.width;
  const int h = spectrum.height;
  const size_t pixels = static_cast<size_t>(w) * h;
  const double f_max = 0.4;  // highest center frequency (cycles/pixel)

  std::vector<double> feature;
  feature.reserve(dimensions());
  ComplexImage response(w, h);
  for (int m = 0; m < scales_; ++m) {
    const double f0 = f_max / std::pow(std::sqrt(2.0), m);
    const double sigma_f = f0 / 2.0;  // isotropic frequency-domain spread
    for (int n = 0; n < orientations_; ++n) {
      const double theta = static_cast<double>(n) * M_PI / orientations_;
      const double u0 = f0 * std::cos(theta);
      const double v0 = f0 * std::sin(theta);
      // Apply the one-sided Gaussian transfer function.
      for (int ky = 0; ky < h; ++ky) {
        // Wrap to signed normalized frequency in [-0.5, 0.5).
        const double v = (ky < h / 2 ? ky : ky - h) / static_cast<double>(h);
        for (int kx = 0; kx < w; ++kx) {
          const double u = (kx < w / 2 ? kx : kx - w) / static_cast<double>(w);
          const double du = u - u0;
          const double dv = v - v0;
          const double g =
              std::exp(-(du * du + dv * dv) / (2.0 * sigma_f * sigma_f));
          response.At(kx, ky) = spectrum.At(kx, ky) * static_cast<float>(g);
        }
      }
      VR_RETURN_NOT_OK(Fft2D(&response, /*inverse=*/true));
      double mag_mean = 0.0;
      for (const Complex& c : response.data) mag_mean += std::abs(c);
      mag_mean /= static_cast<double>(pixels);
      double mag_var = 0.0;
      for (const Complex& c : response.data) {
        const double d = std::abs(c) - mag_mean;
        mag_var += d * d;
      }
      mag_var /= static_cast<double>(pixels);
      feature.push_back(mag_mean);
      feature.push_back(std::sqrt(mag_var));
    }
  }
  return FeatureVector(name(), std::move(feature));
}

}  // namespace vr
