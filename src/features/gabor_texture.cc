#include "features/gabor_texture.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "features/plan/frame_context.h"
#include "imaging/color.h"
#include "imaging/fft.h"
#include "imaging/resize.h"

namespace vr {

GaborTexture::GaborTexture(int scales, int orientations, int working_size)
    : scales_(std::max(1, scales)),
      orientations_(std::max(1, orientations)),
      working_size_(static_cast<int>(
          NextPowerOfTwo(static_cast<size_t>(std::max(16, working_size))))) {}

Result<FeatureVector> GaborTexture::Extract(const Image& img) const {
  if (img.empty()) return Status::InvalidArgument("empty image");

  // Gray, fixed working size, zero-mean unit-variance.
  const Image small =
      Resize(ToGray(img), working_size_, working_size_, ResizeFilter::kBilinear);
  FloatImage f = FloatImage::FromImage(small);
  double mean = 0.0;
  for (float v : f.data()) mean += v;
  mean /= static_cast<double>(f.data().size());
  double var = 0.0;
  for (float v : f.data()) {
    const double d = v - mean;
    var += d * d;
  }
  var /= static_cast<double>(f.data().size());
  const double inv_std = var > 1e-12 ? 1.0 / std::sqrt(var) : 0.0;
  for (float& v : f.data()) {
    v = static_cast<float>((v - mean) * inv_std);
  }

  ComplexImage spectrum = ToComplexPadded(f, working_size_, working_size_);
  VR_RETURN_NOT_OK(Fft2D(&spectrum, /*inverse=*/false));

  const int w = spectrum.width;
  const int h = spectrum.height;
  const size_t pixels = static_cast<size_t>(w) * h;
  const double f_max = 0.4;  // highest center frequency (cycles/pixel)

  std::vector<double> feature;
  feature.reserve(dimensions());
  ComplexImage response(w, h);
  for (int m = 0; m < scales_; ++m) {
    const double f0 = f_max / std::pow(std::sqrt(2.0), m);
    const double sigma_f = f0 / 2.0;  // isotropic frequency-domain spread
    for (int n = 0; n < orientations_; ++n) {
      const double theta = static_cast<double>(n) * M_PI / orientations_;
      const double u0 = f0 * std::cos(theta);
      const double v0 = f0 * std::sin(theta);
      // Apply the one-sided Gaussian transfer function.
      for (int ky = 0; ky < h; ++ky) {
        // Wrap to signed normalized frequency in [-0.5, 0.5).
        const double v = (ky < h / 2 ? ky : ky - h) / static_cast<double>(h);
        for (int kx = 0; kx < w; ++kx) {
          const double u = (kx < w / 2 ? kx : kx - w) / static_cast<double>(w);
          const double du = u - u0;
          const double dv = v - v0;
          const double g =
              std::exp(-(du * du + dv * dv) / (2.0 * sigma_f * sigma_f));
          response.At(kx, ky) = spectrum.At(kx, ky) * static_cast<float>(g);
        }
      }
      VR_RETURN_NOT_OK(Fft2D(&response, /*inverse=*/true));
      double mag_mean = 0.0;
      for (const Complex& c : response.data) mag_mean += std::abs(c);
      mag_mean /= static_cast<double>(pixels);
      double mag_var = 0.0;
      for (const Complex& c : response.data) {
        const double d = std::abs(c) - mag_mean;
        mag_var += d * d;
      }
      mag_var /= static_cast<double>(pixels);
      feature.push_back(mag_mean);
      feature.push_back(std::sqrt(mag_var));
    }
  }
  return FeatureVector(name(), std::move(feature));
}

namespace {

/// Per-plan Gabor state: the FFT twiddle/bit-reversal plan, the filter
/// bank evaluated once (every plane entry is the exact float multiplier
/// the legacy loop computes per frame), and all working rasters. After
/// the first frame, extraction allocates nothing.
struct GaborScratch : PlanContext::Scratch {
  std::unique_ptr<Fft2DPlan> fft;
  std::vector<std::vector<float>> filters;  ///< [m * orientations + n]
  Image small;
  FloatImage f;
  ComplexImage spectrum;
  ComplexImage response;
  std::vector<float> mags;  ///< |response| per pixel, reused per filter
};

}  // namespace

uint32_t GaborTexture::SharedIntermediates() const {
  return static_cast<uint32_t>(Intermediate::kGray);
}

Result<FeatureVector> GaborTexture::ExtractShared(const Image& img,
                                                  PlanContext& ctx) const {
  if (img.empty()) return Status::InvalidArgument("empty image");
  GaborScratch* scratch = ctx.ScratchFor<GaborScratch>(kind());
  const int ws = working_size_;
  const size_t pixels = static_cast<size_t>(ws) * ws;

  if (!scratch->fft) {
    scratch->fft = std::make_unique<Fft2DPlan>(ws, ws);
    // Hoist the filter bank: g depends only on (m, n, kx, ky), never on
    // the frame. Same double-precision formula, same float cast.
    const double f_max = 0.4;
    scratch->filters.reserve(static_cast<size_t>(scales_) * orientations_);
    for (int m = 0; m < scales_; ++m) {
      const double f0 = f_max / std::pow(std::sqrt(2.0), m);
      const double sigma_f = f0 / 2.0;
      for (int n = 0; n < orientations_; ++n) {
        const double theta = static_cast<double>(n) * M_PI / orientations_;
        const double u0 = f0 * std::cos(theta);
        const double v0 = f0 * std::sin(theta);
        std::vector<float> plane(pixels);
        for (int ky = 0; ky < ws; ++ky) {
          const double v =
              (ky < ws / 2 ? ky : ky - ws) / static_cast<double>(ws);
          for (int kx = 0; kx < ws; ++kx) {
            const double u =
                (kx < ws / 2 ? kx : kx - ws) / static_cast<double>(ws);
            const double du = u - u0;
            const double dv = v - v0;
            const double g =
                std::exp(-(du * du + dv * dv) / (2.0 * sigma_f * sigma_f));
            plane[static_cast<size_t>(ky) * ws + kx] = static_cast<float>(g);
          }
        }
        scratch->filters.push_back(std::move(plane));
      }
    }
    scratch->f = FloatImage(ws, ws);
    scratch->spectrum = ComplexImage(ws, ws);
    scratch->response = ComplexImage(ws, ws);
    scratch->mags.resize(pixels);
  }

  // Gray, fixed working size, zero-mean unit-variance — the legacy
  // arithmetic, fed from the shared gray plane and scratch buffers.
  ResizeInto(ctx.Gray(), ws, ws, ResizeFilter::kBilinear, &scratch->small);
  FloatImage& f = scratch->f;
  const uint8_t* gray_bytes = scratch->small.data();
  for (size_t i = 0; i < pixels; ++i) {
    f.data()[i] = static_cast<float>(gray_bytes[i]);
  }
  double mean = 0.0;
  for (float v : f.data()) mean += v;
  mean /= static_cast<double>(f.data().size());
  double var = 0.0;
  for (float v : f.data()) {
    const double d = v - mean;
    var += d * d;
  }
  var /= static_cast<double>(f.data().size());
  const double inv_std = var > 1e-12 ? 1.0 / std::sqrt(var) : 0.0;
  for (float& v : f.data()) {
    v = static_cast<float>((v - mean) * inv_std);
  }

  ComplexImage& spectrum = scratch->spectrum;
  for (size_t i = 0; i < pixels; ++i) {
    spectrum.data[i] = Complex(f.data()[i], 0.0f);
  }
  VR_RETURN_NOT_OK(scratch->fft->Run(&spectrum, /*inverse=*/false));

  std::vector<double> feature;
  feature.reserve(dimensions());
  ComplexImage& response = scratch->response;
  std::vector<float>& mags = scratch->mags;
  const size_t bank = static_cast<size_t>(scales_) * orientations_;
  for (size_t fi = 0; fi < bank; ++fi) {
    const float* filter = scratch->filters[fi].data();
    for (size_t i = 0; i < pixels; ++i) {
      response.data[i] = spectrum.data[i] * filter[i];
    }
    VR_RETURN_NOT_OK(scratch->fft->Run(&response, /*inverse=*/true));
    // One |.| pass; the stored float is the exact value the legacy
    // mean and variance loops each recompute.
    for (size_t i = 0; i < pixels; ++i) {
      mags[i] = std::abs(response.data[i]);
    }
    double mag_mean = 0.0;
    for (size_t i = 0; i < pixels; ++i) mag_mean += mags[i];
    mag_mean /= static_cast<double>(pixels);
    double mag_var = 0.0;
    for (size_t i = 0; i < pixels; ++i) {
      const double d = mags[i] - mag_mean;
      mag_var += d * d;
    }
    mag_var /= static_cast<double>(pixels);
    feature.push_back(mag_mean);
    feature.push_back(std::sqrt(mag_var));
  }
  return FeatureVector(name(), std::move(feature));
}

}  // namespace vr
