#include "features/color_moments.h"

#include <algorithm>
#include <cmath>

#include "features/plan/frame_context.h"
#include "imaging/color.h"

namespace vr {

Result<FeatureVector> ColorMoments::Extract(const Image& img) const {
  if (img.empty()) return Status::InvalidArgument("empty image");
  const double n = static_cast<double>(img.PixelCount());
  double sum[3] = {0, 0, 0};
  // Hue is angular; use its sine/cosine mean to get a stable center,
  // then fold per-pixel hue differences around it. Saturation and value
  // are plain [0, 1] channels.
  double hue_sin = 0.0;
  double hue_cos = 0.0;
  std::vector<Hsv> pixels;
  pixels.reserve(img.PixelCount());
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const Hsv hsv = RgbToHsv(img.PixelRgb(x, y));
      pixels.push_back(hsv);
      hue_sin += std::sin(hsv.h * M_PI / 180.0);
      hue_cos += std::cos(hsv.h * M_PI / 180.0);
      sum[1] += hsv.s;
      sum[2] += hsv.v;
    }
  }
  const double hue_mean_rad = std::atan2(hue_sin, hue_cos);
  auto hue_delta = [&](double h_deg) {
    double d = h_deg * M_PI / 180.0 - hue_mean_rad;
    while (d > M_PI) d -= 2 * M_PI;
    while (d < -M_PI) d += 2 * M_PI;
    return d / M_PI;  // normalized to [-1, 1]
  };

  // Channel accessors normalized to comparable ranges.
  auto channel = [&](const Hsv& p, int c) {
    switch (c) {
      case 0:
        return hue_delta(p.h);
      case 1:
        return p.s;
      default:
        return p.v;
    }
  };
  const double means[3] = {0.0, sum[1] / n, sum[2] / n};

  std::vector<double> feature;
  feature.reserve(kDims);
  for (int c = 0; c < 3; ++c) {
    double m2 = 0.0;
    double m3 = 0.0;
    for (const Hsv& p : pixels) {
      const double d = channel(p, c) - means[c];
      m2 += d * d;
      m3 += d * d * d;
    }
    m2 /= n;
    m3 /= n;
    // Mean reported for hue is the circular mean angle (normalized).
    feature.push_back(c == 0 ? hue_mean_rad / M_PI : means[c]);
    feature.push_back(std::sqrt(m2));
    feature.push_back(std::cbrt(m3));
  }
  return FeatureVector(name(), std::move(feature));
}

uint32_t ColorMoments::SharedIntermediates() const {
  return static_cast<uint32_t>(Intermediate::kHsvPlane);
}

Result<FeatureVector> ColorMoments::ExtractShared(const Image& img,
                                                  PlanContext& ctx) const {
  if (img.empty()) return Status::InvalidArgument("empty image");
  // Same accumulation as Extract, fed from the shared HSV plane (built
  // in the same row-major pixel order) instead of a private copy.
  const std::vector<Hsv>& pixels = ctx.HsvPlane();
  const double n = static_cast<double>(img.PixelCount());
  double sum[3] = {0, 0, 0};
  double hue_sin = 0.0;
  double hue_cos = 0.0;
  for (const Hsv& hsv : pixels) {
    hue_sin += std::sin(hsv.h * M_PI / 180.0);
    hue_cos += std::cos(hsv.h * M_PI / 180.0);
    sum[1] += hsv.s;
    sum[2] += hsv.v;
  }
  const double hue_mean_rad = std::atan2(hue_sin, hue_cos);
  auto hue_delta = [&](double h_deg) {
    double d = h_deg * M_PI / 180.0 - hue_mean_rad;
    while (d > M_PI) d -= 2 * M_PI;
    while (d < -M_PI) d += 2 * M_PI;
    return d / M_PI;
  };
  auto channel = [&](const Hsv& p, int c) {
    switch (c) {
      case 0:
        return hue_delta(p.h);
      case 1:
        return p.s;
      default:
        return p.v;
    }
  };
  const double means[3] = {0.0, sum[1] / n, sum[2] / n};

  std::vector<double> feature;
  feature.reserve(kDims);
  for (int c = 0; c < 3; ++c) {
    double m2 = 0.0;
    double m3 = 0.0;
    for (const Hsv& p : pixels) {
      const double d = channel(p, c) - means[c];
      m2 += d * d;
      m3 += d * d * d;
    }
    m2 /= n;
    m3 /= n;
    feature.push_back(c == 0 ? hue_mean_rad / M_PI : means[c]);
    feature.push_back(std::sqrt(m2));
    feature.push_back(std::cbrt(m3));
  }
  return FeatureVector(name(), std::move(feature));
}

double ColorMoments::DistanceSpan(const double* a, size_t na, const double* b,
                                  size_t nb) const {
  // L1 with circular wrap on the hue-mean dimension.
  const size_t n = std::min(na, nb);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double d = std::fabs(a[i] - b[i]);
    if (i == 0 && d > 1.0) d = 2.0 - d;  // hue mean lives on [-1, 1] circle
    acc += d;
  }
  return acc;
}

}  // namespace vr
