#include "features/glcm_texture.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "features/plan/frame_context.h"
#include "imaging/color.h"

namespace vr {

GlcmTexture::GlcmTexture(int step, int levels)
    : step_(std::max(1, step)), levels_(std::clamp(levels, 2, 256)) {}

Result<FeatureVector> GlcmTexture::Extract(const Image& img) const {
  if (img.empty()) return Status::InvalidArgument("empty image");
  if (img.width() <= step_) {
    return Status::InvalidArgument("image narrower than GLCM step");
  }
  const Image gray = ToGray(img);
  const size_t l = static_cast<size_t>(
      256 >> [this] {
        int s = 0;
        while ((256 >> s) > levels_) ++s;
        return s;
      }());
  std::vector<double> glcm(l * l, 0.0);
  return FromGrayBuffer(gray, glcm.data(), l);
}

uint32_t GlcmTexture::SharedIntermediates() const {
  return static_cast<uint32_t>(Intermediate::kGray);
}

Result<FeatureVector> GlcmTexture::ExtractShared(const Image& img,
                                                 PlanContext& ctx) const {
  if (img.empty()) return Status::InvalidArgument("empty image");
  if (img.width() <= step_) {
    return Status::InvalidArgument("image narrower than GLCM step");
  }
  const size_t l = static_cast<size_t>(
      256 >> [this] {
        int s = 0;
        while ((256 >> s) > levels_) ++s;
        return s;
      }());
  // Arena-backed matrix: no allocation once the arena has warmed up.
  Span<double> glcm = ctx.arena().AllocSpan<double>(l * l);
  return FromGrayBuffer(ctx.Gray(), glcm.data(), l);
}

Result<FeatureVector> GlcmTexture::FromGrayBuffer(const Image& gray,
                                                  double* glcm,
                                                  size_t l) const {
  const int shift = [this] {
    int s = 0;
    while ((256 >> s) > levels_) ++s;
    return s;
  }();
  uint64_t pixel_counter = 0;
  for (int y = 0; y < gray.height(); ++y) {
    for (int x = 0; x + step_ < gray.width(); ++x) {
      const size_t a = static_cast<size_t>(gray.At(x, y) >> shift);
      const size_t b = static_cast<size_t>(gray.At(x + step_, y) >> shift);
      // Symmetric tabulation, as in the paper.
      glcm[a * l + b] += 1.0;
      glcm[b * l + a] += 1.0;
      pixel_counter += 2;
    }
  }
  if (pixel_counter == 0) return Status::InvalidArgument("degenerate image");
  for (size_t i = 0; i < l * l; ++i) {
    glcm[i] /= static_cast<double>(pixel_counter);
  }

  double asm_ = 0.0;
  double contrast = 0.0;
  double idm = 0.0;
  double entropy = 0.0;
  double mean_x = 0.0;
  double mean_y = 0.0;
  for (size_t a = 0; a < l; ++a) {
    for (size_t b = 0; b < l; ++b) {
      const double p = glcm[a * l + b];
      if (p == 0.0) continue;
      asm_ += p * p;
      const double d = static_cast<double>(a) - static_cast<double>(b);
      contrast += d * d * p;
      idm += p / (1.0 + d * d);
      entropy -= p * std::log(p);
      mean_x += static_cast<double>(a) * p;
      mean_y += static_cast<double>(b) * p;
    }
  }
  double var_x = 0.0;
  double var_y = 0.0;
  double cov = 0.0;
  for (size_t a = 0; a < l; ++a) {
    for (size_t b = 0; b < l; ++b) {
      const double p = glcm[a * l + b];
      if (p == 0.0) continue;
      const double dx = static_cast<double>(a) - mean_x;
      const double dy = static_cast<double>(b) - mean_y;
      var_x += dx * dx * p;
      var_y += dy * dy * p;
      cov += dx * dy * p;
    }
  }
  const double denom = std::sqrt(var_x) * std::sqrt(var_y);
  const double correlation = denom > 0 ? cov / denom : 0.0;

  return FeatureVector(
      name(), {static_cast<double>(pixel_counter), asm_, contrast, correlation,
               idm, entropy});
}

double GlcmTexture::DistanceSpan(const double* a, size_t na, const double* b,
                                 size_t nb) const {
  // Canberra distance over the five texture statistics (pixelCounter is a
  // size artifact, not texture); robust to the very different scales of
  // ASM (~1e-2) vs contrast (~1e2).
  double acc = 0.0;
  const size_t n = std::min(na, nb);
  for (size_t i = kAsm; i < n && i < kStatCount; ++i) {
    const double num = std::fabs(a[i] - b[i]);
    const double den = std::fabs(a[i]) + std::fabs(b[i]);
    if (den > 0) acc += num / den;
  }
  return acc;
}

}  // namespace vr
