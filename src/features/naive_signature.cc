#include "features/naive_signature.h"

#include <algorithm>
#include <cmath>

#include "features/plan/frame_context.h"
#include "imaging/resize.h"

namespace vr {

NaiveSignature::NaiveSignature(int base_size, int sample_size)
    : base_size_(std::max(25, base_size)),
      sample_size_(std::max(1, sample_size)) {}

Result<FeatureVector> NaiveSignature::Extract(const Image& img) const {
  if (img.empty()) return Status::InvalidArgument("empty image");
  const Image scaled =
      Resize(img, base_size_, base_size_, ResizeFilter::kNearest);
  return FromScaled(scaled);
}

namespace {
/// Persistent rescale target so steady-state extraction reuses one
/// 300x300 buffer instead of reallocating it per frame.
struct NaiveScratch : PlanContext::Scratch {
  Image scaled;
};
}  // namespace

uint32_t NaiveSignature::SharedIntermediates() const { return 0; }

Result<FeatureVector> NaiveSignature::ExtractShared(const Image& img,
                                                    PlanContext& ctx) const {
  if (img.empty()) return Status::InvalidArgument("empty image");
  NaiveScratch* scratch = ctx.ScratchFor<NaiveScratch>(kind());
  ResizeInto(img, base_size_, base_size_, ResizeFilter::kNearest,
             &scratch->scaled);
  return FromScaled(scratch->scaled);
}

FeatureVector NaiveSignature::FromScaled(const Image& scaled) const {
  std::vector<double> feature;
  feature.reserve(static_cast<size_t>(kPoints) * 3);
  for (int gy = 0; gy < kGrid; ++gy) {
    const double py = (2.0 * gy + 1.0) / (2.0 * kGrid);  // 0.1, 0.3, ...
    for (int gx = 0; gx < kGrid; ++gx) {
      const double px = (2.0 * gx + 1.0) / (2.0 * kGrid);
      const int cx = static_cast<int>(px * base_size_);
      const int cy = static_cast<int>(py * base_size_);
      double accum[3] = {0.0, 0.0, 0.0};
      int num = 0;
      for (int y = cy - sample_size_; y < cy + sample_size_; ++y) {
        for (int x = cx - sample_size_; x < cx + sample_size_; ++x) {
          if (!scaled.Contains(x, y)) continue;
          const Rgb p = scaled.PixelRgb(x, y);
          accum[0] += p.r;
          accum[1] += p.g;
          accum[2] += p.b;
          ++num;
        }
      }
      if (num == 0) num = 1;
      feature.push_back(accum[0] / num);
      feature.push_back(accum[1] / num);
      feature.push_back(accum[2] / num);
    }
  }
  return FeatureVector(name(), std::move(feature));
}

double NaiveSignature::DistanceSpan(const double* a, size_t na,
                                    const double* b, size_t nb) const {
  const size_t n = std::min(na, nb) / 3;
  double acc = 0.0;
  for (size_t p = 0; p < n; ++p) {
    const double dr = a[3 * p] - b[3 * p];
    const double dg = a[3 * p + 1] - b[3 * p + 1];
    const double db = a[3 * p + 2] - b[3 * p + 2];
    acc += std::sqrt(dr * dr + dg * dg + db * db);
  }
  return acc;
}

}  // namespace vr
