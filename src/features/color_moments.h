/// \file color_moments.h
/// \brief HSV color moments (extension feature).
///
/// Stricker & Orengo's compact color descriptor: mean, standard
/// deviation and cube-root skewness of each HSV channel — 9 values.
/// Part of the paper's future-work feature set.

#pragma once

#include "features/feature_vector.h"

namespace vr {

/// \brief First three moments of each HSV channel.
class ColorMoments : public FeatureExtractor {
 public:
  ColorMoments() = default;

  FeatureKind kind() const override { return FeatureKind::kColorMoments; }
  Result<FeatureVector> Extract(const Image& img) const override;
  uint32_t SharedIntermediates() const override;
  Result<FeatureVector> ExtractShared(const Image& img,
                                      PlanContext& ctx) const override;
  double DistanceSpan(const double* a, size_t na, const double* b,
                      size_t nb) const override;
  /// L1 with the hue-mean circle wrap on element 0.
  CodeMetricSpec code_metric() const override {
    return {.family = CodeMetricFamily::kL1, .wrap_dim0 = true};
  }

  /// Layout: [mean_h, std_h, skew_h, mean_s, ..., skew_v].
  static constexpr size_t kDims = 9;
};

}  // namespace vr
