/// \file tamura_texture.h
/// \brief Tamura texture features: coarseness, contrast, directionality.
///
/// The paper's TAMURA column stores 18 values: coarseness, contrast,
/// then a 16-bin directionality histogram.

#pragma once

#include "features/feature_vector.h"

namespace vr {

/// \brief Tamura features (Tamura, Mori & Yamawaki 1978).
class TamuraTexture : public FeatureExtractor {
 public:
  /// \p max_scale bounds the coarseness window at 2^max_scale pixels;
  /// \p dir_bins is the directionality histogram size;
  /// \p dir_threshold drops near-flat gradients from the histogram.
  TamuraTexture(int max_scale = 5, int dir_bins = 16,
                double dir_threshold = 12.0);

  FeatureKind kind() const override { return FeatureKind::kTamura; }
  Result<FeatureVector> Extract(const Image& img) const override;
  uint32_t SharedIntermediates() const override;
  Result<FeatureVector> ExtractShared(const Image& img,
                                      PlanContext& ctx) const override;
  double DistanceSpan(const double* a, size_t na, const double* b,
                      size_t nb) const override;
  /// Canberra over coarseness & contrast plus an L1 tail over the
  /// directionality histogram. Prepare fails for queries shorter than
  /// kDirStart — those take DistanceSpan's default-L2 guard instead.
  CodeMetricSpec code_metric() const override {
    return {.family = CodeMetricFamily::kCanberraL1,
            .canberra_end = kDirStart,
            .l1_tail = true};
  }

  enum : size_t {
    kCoarseness = 0,
    kContrast = 1,
    kDirStart = 2,
  };

 private:
  /// Full Tamura computation from an already-grayscale image. Extract
  /// and ExtractShared both funnel here (the latter passing the plan's
  /// shared gray plane), so the paths are bit-identical by construction.
  Result<FeatureVector> FromGray(const Image& gray_in) const;

  int max_scale_;
  int dir_bins_;
  double dir_threshold_;
};

}  // namespace vr
