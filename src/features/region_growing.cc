#include "features/region_growing.h"

#include <cmath>
#include <vector>

#include "features/plan/frame_context.h"
#include "imaging/color.h"
#include "imaging/morphology.h"
#include "imaging/threshold.h"

namespace vr {

SimpleRegionGrowing::SimpleRegionGrowing(double major_fraction)
    : major_fraction_(major_fraction) {}

Result<Image> SimpleRegionGrowing::Preprocess(const Image& img) const {
  if (img.empty()) return Status::InvalidArgument("empty image");
  const Image gray = ToGray(img);
  const GrayHistogram hist = ComputeGrayHistogram(gray);
  const int threshold = MinFuzzinessThreshold(hist);
  Image binary = Binarize(gray, threshold);
  // The paper's morphology sequence: dilate, erode, erode, dilate
  // (a close followed by an open), with its 5x5 kernel.
  const StructuringElement kernel = PaperKernel5x5();
  binary = Dilate(binary, kernel);
  binary = Erode(binary, kernel);
  binary = Erode(binary, kernel);
  binary = Dilate(binary, kernel);
  return binary;
}

Result<RegionStats> SimpleRegionGrowing::Analyze(const Image& img) const {
  VR_ASSIGN_OR_RETURN(Image binary, Preprocess(img));
  const size_t pixels = static_cast<size_t>(binary.width()) * binary.height();
  std::vector<int> labels(pixels, 0);
  std::vector<Pt> stack(pixels);
  return LabelRegions(binary, labels.data(), stack.data());
}

RegionStats SimpleRegionGrowing::LabelRegions(const Image& binary, int* labels,
                                              Pt* stack) const {
  const int w = binary.width();
  const int h = binary.height();
  auto label_at = [&](int x, int y) -> int& {
    return labels[static_cast<size_t>(y) * w + x];
  };

  RegionStats stats;
  const size_t major_min = std::max<size_t>(
      1, static_cast<size_t>(major_fraction_ * static_cast<double>(w) * h));
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (label_at(x, y) != 0) continue;
      const uint8_t value = binary.At(x, y);
      if (value == 0) ++stats.num_holes;
      ++stats.num_regions;
      const int region = stats.num_regions;
      size_t size = 0;
      size_t top = 0;
      stack[top++] = {x, y};
      label_at(x, y) = region;
      while (top > 0) {
        const auto [cx, cy] = stack[--top];
        ++size;
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            const int nx = cx + dx;
            const int ny = cy + dy;
            if (nx < 0 || ny < 0 || nx >= w || ny >= h) continue;
            if (label_at(nx, ny) != 0) continue;
            if (binary.At(nx, ny) != value) continue;
            label_at(nx, ny) = region;
            stack[top++] = {nx, ny};
          }
        }
      }
      if (size >= major_min) ++stats.num_major_regions;
    }
  }
  return stats;
}

uint32_t SimpleRegionGrowing::SharedIntermediates() const {
  return static_cast<uint32_t>(Intermediate::kGray) |
         static_cast<uint32_t>(Intermediate::kGrayHistogram);
}

Result<FeatureVector> SimpleRegionGrowing::ExtractShared(
    const Image& img, PlanContext& ctx) const {
  if (img.empty()) return Status::InvalidArgument("empty image");
  // Preprocess() recomputes gray + histogram; here both come from the
  // shared plan (the histogram over the gray plane is exactly
  // ComputeGrayHistogram of it), and the labeling buffers come from the
  // frame arena instead of fresh vectors.
  const int threshold = MinFuzzinessThreshold(ctx.Histogram());
  Image binary = Binarize(ctx.Gray(), threshold);
  const StructuringElement kernel = PaperKernel5x5();
  binary = Dilate(binary, kernel);
  binary = Erode(binary, kernel);
  binary = Erode(binary, kernel);
  binary = Dilate(binary, kernel);

  const size_t pixels = static_cast<size_t>(binary.width()) * binary.height();
  Span<int> labels = ctx.arena().AllocSpan<int>(pixels);
  Span<Pt> stack = ctx.arena().AllocSpan<Pt>(pixels);
  const RegionStats stats = LabelRegions(binary, labels.data(), stack.data());
  return FeatureVector(
      name(), {static_cast<double>(stats.num_regions),
               static_cast<double>(stats.num_holes),
               static_cast<double>(stats.num_major_regions)});
}

Result<FeatureVector> SimpleRegionGrowing::Extract(const Image& img) const {
  VR_ASSIGN_OR_RETURN(RegionStats stats, Analyze(img));
  return FeatureVector(
      name(), {static_cast<double>(stats.num_regions),
               static_cast<double>(stats.num_holes),
               static_cast<double>(stats.num_major_regions)});
}

double SimpleRegionGrowing::DistanceSpan(const double* a, size_t na,
                                         const double* b, size_t nb) const {
  // Canberra: counts live on very different scales (regions can reach
  // hundreds while major regions stay in single digits).
  const size_t n = std::min(na, nb);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double den = std::fabs(a[i]) + std::fabs(b[i]);
    if (den > 0) acc += std::fabs(a[i] - b[i]) / den;
  }
  return acc;
}

}  // namespace vr
