/// \file extractor_registry.h
/// \brief Factory for the paper's seven feature extractors.

#pragma once

#include <memory>
#include <vector>

#include "features/feature_vector.h"

namespace vr {

/// Creates the extractor for one feature family with default parameters.
std::unique_ptr<FeatureExtractor> MakeExtractor(FeatureKind kind);

/// Creates all seven extractors, ordered by FeatureKind value.
std::vector<std::unique_ptr<FeatureExtractor>> MakeAllExtractors();

/// The feature kinds the paper's Table 1 evaluates individually
/// (all seven, in the paper's column order).
const std::vector<FeatureKind>& Table1FeatureKinds();

}  // namespace vr
