#include "features/color_histogram.h"

#include <cmath>

#include "features/plan/frame_context.h"
#include "imaging/color.h"

namespace vr {

int SimpleColorHistogram::Quantize(Rgb pixel) const {
  switch (space_) {
    case HistogramSpace::kRgb256:
      // 8 x 8 x 4 levels.
      return ((pixel.r >> 5) << 5) | ((pixel.g >> 5) << 2) | (pixel.b >> 6);
    case HistogramSpace::kGray256:
      return RgbToGray(pixel);
    case HistogramSpace::kHsv256:
      return QuantizeHsv(RgbToHsv(pixel));
  }
  return 0;
}

Result<FeatureVector> SimpleColorHistogram::Extract(const Image& img) const {
  if (img.empty()) return Status::InvalidArgument("empty image");
  std::vector<double> bins(256, 0.0);
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      bins[static_cast<size_t>(Quantize(img.PixelRgb(x, y)))] += 1.0;
    }
  }
  return FeatureVector(name(), std::move(bins));
}

uint32_t SimpleColorHistogram::SharedIntermediates() const {
  switch (space_) {
    case HistogramSpace::kRgb256:
      return 0;  // quantizes raw RGB bytes, nothing shareable
    case HistogramSpace::kGray256:
      return static_cast<uint32_t>(Intermediate::kGray);
    case HistogramSpace::kHsv256:
      return static_cast<uint32_t>(Intermediate::kHsvPlane);
  }
  return 0;
}

Result<FeatureVector> SimpleColorHistogram::ExtractShared(
    const Image& img, PlanContext& ctx) const {
  if (img.empty()) return Status::InvalidArgument("empty image");
  std::vector<double> bins(256, 0.0);
  switch (space_) {
    case HistogramSpace::kGray256: {
      // Quantize(pixel) == RgbToGray(pixel) == the shared gray plane.
      const Image& gray = ctx.Gray();
      const uint8_t* data = gray.data();
      const size_t n = gray.PixelCount();
      for (size_t i = 0; i < n; ++i) bins[data[i]] += 1.0;
      break;
    }
    case HistogramSpace::kHsv256: {
      for (const Hsv& hsv : ctx.HsvPlane()) {
        bins[static_cast<size_t>(QuantizeHsv(hsv))] += 1.0;
      }
      break;
    }
    case HistogramSpace::kRgb256: {
      for (int y = 0; y < img.height(); ++y) {
        for (int x = 0; x < img.width(); ++x) {
          bins[static_cast<size_t>(Quantize(img.PixelRgb(x, y)))] += 1.0;
        }
      }
      break;
    }
  }
  return FeatureVector(name(), std::move(bins));
}

double SimpleColorHistogram::DistanceSpan(const double* a, size_t na,
                                          const double* b, size_t nb) const {
  // L1 over L1-normalized histograms, in [0, 2].
  double sa = 0.0;
  double sb = 0.0;
  for (size_t i = 0; i < na; ++i) sa += a[i];
  for (size_t i = 0; i < nb; ++i) sb += b[i];
  if (sa == 0.0 || sb == 0.0) return sa == sb ? 0.0 : 2.0;
  const size_t n = std::min(na, nb);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += std::fabs(a[i] / sa - b[i] / sb);
  }
  return acc;
}

}  // namespace vr
