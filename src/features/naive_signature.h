/// \file naive_signature.h
/// \brief Superficial (naive) 25-point color signature (paper §4.6).

#pragma once

#include "features/feature_vector.h"

namespace vr {

/// \brief 25 mean-color samples on a 5x5 grid over the rescaled image.
///
/// The paper rescales to 300x300 (nearest-neighbor), samples a 5x5 grid
/// of locations at {0.1, 0.3, 0.5, 0.7, 0.9} of each axis, and averages
/// a +/- sample_size window around each location in R, G, B. The feature
/// is 75 values (25 points x RGB, row-major).
///
/// The key-frame extractor (§4.1) uses this signature's distance with
/// the paper's threshold of 800.
class NaiveSignature : public FeatureExtractor {
 public:
  NaiveSignature(int base_size = 300, int sample_size = 15);

  FeatureKind kind() const override { return FeatureKind::kNaiveSignature; }
  Result<FeatureVector> Extract(const Image& img) const override;
  uint32_t SharedIntermediates() const override;
  Result<FeatureVector> ExtractShared(const Image& img,
                                      PlanContext& ctx) const override;

  /// Sum over the 25 points of the Euclidean RGB distance between the
  /// two signatures — the quantity the paper compares against 800.
  double DistanceSpan(const double* a, size_t na, const double* b,
                      size_t nb) const override;
  /// Per-RGB-triple Euclidean distances: integer SSD over blocks of 3.
  CodeMetricSpec code_metric() const override {
    return {.family = CodeMetricFamily::kL2Blocked, .block = 3};
  }

  static constexpr int kGrid = 5;
  static constexpr int kPoints = kGrid * kGrid;

 private:
  /// Grid sampling over the already-rescaled image; shared by Extract
  /// and ExtractShared so the paths are bit-identical by construction.
  FeatureVector FromScaled(const Image& scaled) const;

  int base_size_;
  int sample_size_;
};

}  // namespace vr
