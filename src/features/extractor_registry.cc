#include "features/extractor_registry.h"

#include "features/auto_correlogram.h"
#include "features/color_histogram.h"
#include "features/color_moments.h"
#include "features/color_signature.h"
#include "features/edge_histogram.h"
#include "features/gabor_texture.h"
#include "features/glcm_texture.h"
#include "features/naive_signature.h"
#include "features/region_growing.h"
#include "features/tamura_texture.h"

namespace vr {

std::unique_ptr<FeatureExtractor> MakeExtractor(FeatureKind kind) {
  switch (kind) {
    case FeatureKind::kColorHistogram:
      return std::make_unique<SimpleColorHistogram>();
    case FeatureKind::kGlcm:
      return std::make_unique<GlcmTexture>();
    case FeatureKind::kGabor:
      return std::make_unique<GaborTexture>();
    case FeatureKind::kTamura:
      return std::make_unique<TamuraTexture>();
    case FeatureKind::kAutoCorrelogram:
      return std::make_unique<AutoColorCorrelogram>();
    case FeatureKind::kNaiveSignature:
      return std::make_unique<NaiveSignature>();
    case FeatureKind::kRegionGrowing:
      return std::make_unique<SimpleRegionGrowing>();
    case FeatureKind::kEdgeHistogram:
      return std::make_unique<EdgeHistogram>();
    case FeatureKind::kColorMoments:
      return std::make_unique<ColorMoments>();
    case FeatureKind::kColorSignature:
      return std::make_unique<ColorSignatureFeature>();
  }
  return nullptr;
}

std::vector<std::unique_ptr<FeatureExtractor>> MakeAllExtractors() {
  std::vector<std::unique_ptr<FeatureExtractor>> out;
  out.reserve(kNumFeatureKinds);
  for (int i = 0; i < kNumFeatureKinds; ++i) {
    out.push_back(MakeExtractor(static_cast<FeatureKind>(i)));
  }
  return out;
}

const std::vector<FeatureKind>& Table1FeatureKinds() {
  // The paper's Table-1 column order: GLCM, Gabor, Tamura, Histogram,
  // Autocorrelogram, Simple Region Growing (then Combined).
  static const std::vector<FeatureKind> kKinds = {
      FeatureKind::kGlcm,           FeatureKind::kGabor,
      FeatureKind::kTamura,         FeatureKind::kColorHistogram,
      FeatureKind::kAutoCorrelogram, FeatureKind::kRegionGrowing,
  };
  return kKinds;
}

}  // namespace vr
