#include "features/plan/extraction_cache.h"

#include <cstring>

#include "util/hash.h"

namespace vr {

ExtractionCache::ExtractionCache(size_t capacity, HashFn hash)
    : capacity_(capacity), hash_(hash != nullptr ? hash : &Fnv1a64) {}

bool ExtractionCache::KeyMatches(const Slot& slot, const Image& img) {
  return slot.width == img.width() && slot.height == img.height() &&
         slot.channels == img.channels() &&
         slot.pixels.size() == img.SizeBytes() &&
         (slot.pixels.empty() ||
          std::memcmp(slot.pixels.data(), img.data(), slot.pixels.size()) == 0);
}

bool ExtractionCache::Lookup(const Image& img, Entry* out) {
  if (capacity_ == 0) return false;
  const uint64_t h = hash_(img.data(), img.SizeBytes());
  MutexLock lock(mutex_);
  auto [it, end] = by_hash_.equal_range(h);
  for (; it != end; ++it) {
    if (!KeyMatches(*it->second, img)) continue;  // hash collision
    lru_.splice(lru_.begin(), lru_, it->second);
    *out = it->second->entry;
    ++stats_.hits;
    return true;
  }
  ++stats_.misses;
  return false;
}

void ExtractionCache::Insert(const Image& img, const Entry& entry) {
  if (capacity_ == 0) return;
  const uint64_t h = hash_(img.data(), img.SizeBytes());
  MutexLock lock(mutex_);
  auto [it, end] = by_hash_.equal_range(h);
  for (; it != end; ++it) {
    if (!KeyMatches(*it->second, img)) continue;
    // Racing extractions of the same frame both insert; features are a
    // pure function of the pixels, so refreshing recency is enough.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  Slot slot;
  slot.hash = h;
  slot.width = img.width();
  slot.height = img.height();
  slot.channels = img.channels();
  slot.pixels.assign(img.data(), img.data() + img.SizeBytes());
  slot.entry = entry;
  lru_.push_front(std::move(slot));
  by_hash_.emplace(h, lru_.begin());
  while (lru_.size() > capacity_) {
    const LruList::iterator victim = std::prev(lru_.end());
    auto [vit, vend] = by_hash_.equal_range(victim->hash);
    for (; vit != vend; ++vit) {
      if (vit->second == victim) {
        by_hash_.erase(vit);
        break;
      }
    }
    lru_.erase(victim);
    ++stats_.evictions;
  }
}

void ExtractionCache::Clear() {
  MutexLock lock(mutex_);
  lru_.clear();
  by_hash_.clear();
}

size_t ExtractionCache::size() const {
  MutexLock lock(mutex_);
  return lru_.size();
}

ExtractionCache::Stats ExtractionCache::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace vr
