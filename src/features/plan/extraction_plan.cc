#include "features/plan/extraction_plan.h"

#include "util/stopwatch.h"

namespace vr {

namespace {
uint64_t ToNanos(double ms) { return static_cast<uint64_t>(ms * 1e6); }
}  // namespace

ExtractionPlan::ExtractionPlan(
    std::vector<const FeatureExtractor*> extractors) {
  extractors_.reserve(extractors.size());
  for (const FeatureExtractor* e : extractors) {
    if (e == nullptr) continue;
    extractors_.push_back(e);
    union_mask_ |= e->SharedIntermediates();
  }
  // The engine buckets every extracted frame through the range finder,
  // so the histogram intermediate is part of every plan.
  union_mask_ |= static_cast<uint32_t>(Intermediate::kGray) |
                 static_cast<uint32_t>(Intermediate::kGrayHistogram);
}

Result<FeatureMap> ExtractionPlan::ExtractAll(const Image& img,
                                              FrameTimings* timings) {
  if (img.empty()) return Status::InvalidArgument("empty image");
  context_.BeginFrame(img);
  context_.Materialize(union_mask_);
  FeatureMap out;
  for (const FeatureExtractor* extractor : extractors_) {
    Stopwatch timer;
    VR_ASSIGN_OR_RETURN(FeatureVector fv, extractor->ExtractShared(img, context_));
    if (timings != nullptr) {
      timings->extractor_ns[static_cast<size_t>(extractor->kind())] +=
          ToNanos(timer.ElapsedMillis());
    }
    out.emplace(extractor->kind(), std::move(fv));
  }
  if (timings != nullptr) {
    timings->intermediate_ns = context_.intermediate_ns();
  }
  return out;
}

Result<FeatureVector> ExtractionPlan::ExtractOne(const Image& img,
                                                 FeatureKind kind) {
  if (img.empty()) return Status::InvalidArgument("empty image");
  for (const FeatureExtractor* extractor : extractors_) {
    if (extractor->kind() != kind) continue;
    context_.BeginFrame(img);
    context_.Materialize(extractor->SharedIntermediates() |
                         static_cast<uint32_t>(Intermediate::kGray) |
                         static_cast<uint32_t>(Intermediate::kGrayHistogram));
    return extractor->ExtractShared(img, context_);
  }
  return Status::InvalidArgument(std::string("feature not registered: ") +
                                 FeatureKindName(kind));
}

}  // namespace vr
