/// \file arena.h
/// \brief Bump-allocated scratch arena and the typed span view over it.
///
/// The extraction hot path used to allocate every intermediate (gray
/// planes, co-occurrence matrices, quantized rasters, FFT scratch) with
/// a fresh heap vector per frame. The arena replaces that with reusable
/// chunks per ExtractionPlan: AllocSpan() bumps a cursor, Reset()
/// rewinds it without freeing, so after the first frame has sized the
/// arena the steady state performs zero heap allocations (the zero-copy
/// span + reusable memory-buffer idiom of VideoDoctor's span.hpp /
/// memory_buffer.hpp).
///
/// Growth never moves live allocations: when the current chunk is full
/// a new chunk is appended, and Reset() — when no span is live —
/// consolidates everything into one chunk sized to the high-water mark.
///
/// Thread-safety: none. An Arena belongs to exactly one ExtractionPlan
/// and is used by one extraction at a time; the engine's plan pool
/// guarantees that.

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

namespace vr {

/// \brief Non-owning typed view over contiguous memory.
template <typename T>
struct Span {
  T* ptr = nullptr;
  size_t count = 0;

  T* data() const { return ptr; }
  size_t size() const { return count; }
  bool empty() const { return count == 0; }
  T& operator[](size_t i) const { return ptr[i]; }
  T* begin() const { return ptr; }
  T* end() const { return ptr + count; }
};

/// \brief Growable bump allocator for per-frame scratch.
class Arena {
 public:
  explicit Arena(size_t initial_bytes = 4096) {
    chunks_.emplace_back();
    chunks_.back().resize(initial_bytes);
  }

  /// Rewinds the cursor; existing spans become invalid, capacity (the
  /// high-water mark) stays. If the last frame overflowed into extra
  /// chunks, they are merged into one so subsequent frames bump through
  /// a single buffer.
  void Reset() {
    if (chunks_.size() > 1) {
      const size_t total = capacity();
      chunks_.clear();
      chunks_.emplace_back();
      chunks_.back().resize(total);
    }
    used_ = 0;
  }

  /// Allocates \p count values of T, zero-filled, aligned to
  /// alignof(T). Never moves earlier allocations. T must be trivially
  /// copyable (no constructors run).
  template <typename T>
  Span<T> AllocSpan(size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t bytes = count * sizeof(T);
    uint8_t* base = Allocate(bytes, alignof(T));
    std::memset(base, 0, bytes);
    return Span<T>{reinterpret_cast<T*>(base), count};
  }

  /// Total bytes across chunks — the high-water mark across frames.
  size_t capacity() const {
    size_t total = 0;
    for (const auto& c : chunks_) total += c.size();
    return total;
  }

  /// Chunk count; 1 in steady state (no growth since the last Reset
  /// consolidation).
  size_t chunks() const { return chunks_.size(); }

 private:
  uint8_t* Allocate(size_t bytes, size_t align) {
    std::vector<uint8_t>& chunk = chunks_.back();
    const size_t base = reinterpret_cast<size_t>(chunk.data());
    size_t offset = ((base + used_ + align - 1) & ~(align - 1)) - base;
    if (offset + bytes > chunk.size()) {
      // Geometric growth in a fresh chunk; live spans stay put.
      chunks_.emplace_back();
      chunks_.back().resize(std::max(bytes + align, capacity()));
      used_ = 0;
      return Allocate(bytes, align);
    }
    used_ = offset + bytes;
    return chunk.data() + offset;
  }

  std::vector<std::vector<uint8_t>> chunks_;
  size_t used_ = 0;  ///< cursor within chunks_.back()
};

}  // namespace vr
