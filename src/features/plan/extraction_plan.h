/// \file extraction_plan.h
/// \brief Fused single-pass extraction over shared intermediates.
///
/// An ExtractionPlan walks its registered extractors once at
/// construction, collects the shared intermediates each declares
/// (SharedIntermediates()), and per frame materializes that union
/// exactly once into the PlanContext's reusable buffers before feeding
/// every extractor the memoized views through ExtractShared. Extractor
/// temporaries come from the context's arena and per-kind scratch
/// slots, so the steady state extracts without heap allocation in the
/// fused paths.
///
/// The plan's output is bit-identical to running each extractor's
/// legacy Extract on the same frame — every fused path replays the
/// legacy arithmetic in the legacy order (the contract
/// tests/extraction_plan_test.cc pins for every registered kind).
///
/// Thread-safety: a plan is single-threaded scratch. The engine keeps a
/// pool of plans (checked out per extraction) instead of sharing one.

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "features/feature_vector.h"
#include "features/plan/frame_context.h"

namespace vr {

/// \brief One-pass fused extraction pipeline.
class ExtractionPlan {
 public:
  /// Per-frame cost breakdown, filled by ExtractAll when requested.
  struct FrameTimings {
    /// Time inside each extractor's fused path (excludes shared
    /// intermediates), indexed by FeatureKind.
    std::array<uint64_t, kNumFeatureKinds> extractor_ns{};
    /// Time producing each shared intermediate, indexed by
    /// Intermediate bit position.
    std::array<uint64_t, kNumIntermediates> intermediate_ns{};
  };

  /// Registers \p extractors (non-owning; they must outlive the plan;
  /// null entries are ignored) and unions their intermediate
  /// declarations.
  explicit ExtractionPlan(std::vector<const FeatureExtractor*> extractors);

  /// Extracts every registered feature from \p img in registration
  /// order. The gray histogram is always materialized (the engine
  /// derives the range-finder bucket from it); it stays readable via
  /// histogram() until the next extraction.
  Result<FeatureMap> ExtractAll(const Image& img,
                                FrameTimings* timings = nullptr);

  /// Extracts a single registered kind (the single-feature query path),
  /// materializing only what that extractor declares plus the gray
  /// histogram. InvalidArgument when \p kind is not registered.
  Result<FeatureVector> ExtractOne(const Image& img, FeatureKind kind);

  /// Gray histogram of the most recent Extract* frame.
  const GrayHistogram& histogram() { return context_.Histogram(); }

  /// Union of the registered extractors' intermediate declarations.
  uint32_t intermediate_mask() const { return union_mask_; }

  PlanContext& context() { return context_; }

 private:
  std::vector<const FeatureExtractor*> extractors_;
  uint32_t union_mask_ = 0;
  PlanContext context_;
};

}  // namespace vr
