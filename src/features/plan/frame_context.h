/// \file frame_context.h
/// \brief Shared per-frame intermediates for the fused extraction plan.
///
/// Several extractors independently re-derive the same intermediates
/// from the frame: the gray plane (GLCM, Gabor, Tamura, region
/// growing), its histogram (region growing's threshold and the range
/// finder's bucket), the per-pixel HSV plane (color moments and, on
/// frames that skip its resize cap, the auto correlogram) and the float
/// luma plane (edge histogram). PlanContext computes each exactly once
/// per frame and hands every consumer the same memoized view.
///
/// Every producer replays the legacy per-extractor arithmetic verbatim
/// — same formula, same pixel order — so a fused extraction is
/// bit-identical to running the extractors standalone (the parity
/// contract tests/extraction_plan_test.cc enforces).
///
/// Thread-safety: none; a PlanContext belongs to one ExtractionPlan and
/// one extraction uses it at a time (the engine's plan pool enforces
/// this). The REQUIRES-style contract is documented in DESIGN.md.

#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "features/feature_vector.h"
#include "features/plan/arena.h"
#include "imaging/color.h"
#include "imaging/float_image.h"
#include "imaging/histogram.h"
#include "imaging/image.h"

namespace vr {

/// Intermediates an extractor can declare (and PlanContext memoizes).
/// Values are bit positions for the plan's union mask.
enum class Intermediate : uint32_t {
  kGray = 1u << 0,           ///< u8 gray plane (BT.601, rounded)
  kGrayHistogram = 1u << 1,  ///< 256-bin histogram of the gray plane
  kHsvPlane = 1u << 2,       ///< per-pixel RgbToHsv, row-major
  kGrayFloat = 1u << 3,      ///< float luma plane (BT.601, unrounded)
};

inline constexpr uint32_t kNumIntermediates = 4;

/// Stable name of the intermediate at bit position \p bit.
const char* IntermediateName(uint32_t bit);

/// \brief Memoized shared intermediates plus scratch for one frame.
class PlanContext {
 public:
  PlanContext();

  /// Rebinds the context to \p img: memos are cleared, the arena cursor
  /// rewinds (capacity kept), per-extractor scratch survives. \p img
  /// must outlive the frame.
  void BeginFrame(const Image& img);

  /// The frame bound by BeginFrame.
  const Image& frame() const { return *frame_; }

  /// \name Memoized intermediates.
  /// Each computes on first access per frame (timed into
  /// intermediate_ns) and returns the cached plane afterwards.
  /// @{
  const Image& Gray();
  const GrayHistogram& Histogram();
  const std::vector<Hsv>& HsvPlane();
  const FloatImage& GrayFloat();
  /// @}

  /// Eagerly computes every intermediate in \p mask (bits of
  /// Intermediate) — the plan calls this once per frame with the union
  /// of every registered extractor's declaration.
  void Materialize(uint32_t mask);

  /// Per-frame scratch allocator for extractor temporaries.
  Arena& arena() { return arena_; }

  /// \brief Base for per-extractor persistent state (filter banks, FFT
  /// plans, reusable rasters). Survives BeginFrame, dies with the
  /// context.
  struct Scratch {
    virtual ~Scratch() = default;
  };

  /// The persistent scratch slot of \p kind, created on first use.
  template <typename T>
  T* ScratchFor(FeatureKind kind) {
    std::unique_ptr<Scratch>& slot = scratch_[static_cast<size_t>(kind)];
    if (slot == nullptr) slot = std::make_unique<T>();
    return static_cast<T*>(slot.get());
  }

  /// Nanoseconds spent computing each intermediate this frame, indexed
  /// by bit position.
  const std::array<uint64_t, kNumIntermediates>& intermediate_ns() const {
    return intermediate_ns_;
  }

 private:
  const Image* frame_ = nullptr;

  bool have_gray_ = false;
  bool have_histogram_ = false;
  bool have_hsv_ = false;
  bool have_gray_float_ = false;

  /// When the frame is already single-channel, Gray() aliases it
  /// instead of copying (ToGray does the same).
  const Image* gray_view_ = nullptr;
  Image gray_;
  GrayHistogram histogram_;
  std::vector<Hsv> hsv_;
  FloatImage gray_float_;

  Arena arena_;
  std::array<std::unique_ptr<Scratch>, kNumFeatureKinds> scratch_;
  std::array<uint64_t, kNumIntermediates> intermediate_ns_{};
};

}  // namespace vr
