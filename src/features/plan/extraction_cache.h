/// \file extraction_cache.h
/// \brief Content-addressed cache of extracted feature banks.
///
/// Extraction is a pure function of the frame's pixels, so two frames
/// with identical bytes always extract to identical features — the
/// cache keys on an FNV-1a hash of the pixel bytes (plus geometry) and
/// lets repeated query frames skip the extractors entirely. Entries
/// also carry the frame's gray histogram, from which the engine
/// re-derives the range-finder bucket without touching the pixels.
///
/// Collision safety: a hash match alone is never trusted — every hit
/// does a full-key compare (geometry + every pixel byte) against the
/// stored frame copy, so two frames that collide in the hash can
/// coexist and neither is ever served the other's features. The hash
/// function is injectable for exactly that test.
///
/// Eviction: bounded LRU. Lookup refreshes recency; Insert evicts the
/// least-recently-used entries above capacity.
///
/// Invalidation: there is nothing to invalidate — entries depend only
/// on pixel content, never on corpus state, so ingest and remove leave
/// the cache untouched and still-correct (the engine test suite pins
/// queries after ingest/remove against a cold-cache engine).
///
/// Thread-safety: fully internally synchronized; every method may be
/// called concurrently (queries share the engine lock, so the cache
/// must serialize itself). Guarded state is annotated and verified by
/// Clang's thread-safety analysis.

#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "features/feature_vector.h"
#include "imaging/histogram.h"
#include "imaging/image.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace vr {

/// \brief Bounded LRU of pixel-content -> extracted features.
class ExtractionCache {
 public:
  using HashFn = uint64_t (*)(const uint8_t* data, size_t size);

  /// Hit/miss/eviction counters since construction.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  /// A cached extraction: the full feature bank plus the frame's gray
  /// histogram (the range finder's input).
  struct Entry {
    FeatureMap features;
    GrayHistogram histogram;
  };

  /// \p capacity bounds the entry count (0 disables the cache: Lookup
  /// always misses, Insert is a no-op). \p hash overrides the content
  /// hash — the collision-safety tests inject a degenerate one; null
  /// selects FNV-1a.
  explicit ExtractionCache(size_t capacity, HashFn hash = nullptr);

  /// Copies the cached entry for \p img into \p out and refreshes its
  /// recency. False (a miss) when absent.
  bool Lookup(const Image& img, Entry* out) EXCLUDES(mutex_);

  /// Inserts (or refreshes) the entry for \p img, evicting LRU entries
  /// beyond capacity.
  void Insert(const Image& img, const Entry& entry) EXCLUDES(mutex_);

  /// Drops every entry (counters survive).
  void Clear() EXCLUDES(mutex_);

  size_t size() const EXCLUDES(mutex_);
  size_t capacity() const { return capacity_; }
  Stats stats() const EXCLUDES(mutex_);

 private:
  struct Slot {
    uint64_t hash = 0;
    int width = 0;
    int height = 0;
    int channels = 0;
    std::vector<uint8_t> pixels;  ///< full key copy for the hit compare
    Entry entry;
  };
  using LruList = std::list<Slot>;

  /// True when \p slot's key equals \p img byte-for-byte.
  static bool KeyMatches(const Slot& slot, const Image& img);

  const size_t capacity_;
  const HashFn hash_;
  mutable Mutex mutex_{LockLevel::kLeaf, "extraction_cache"};
  /// Front = most recently used.
  LruList lru_ GUARDED_BY(mutex_);
  /// Hash -> every slot with that hash (collisions chain here).
  std::unordered_multimap<uint64_t, LruList::iterator> by_hash_
      GUARDED_BY(mutex_);
  Stats stats_ GUARDED_BY(mutex_);
};

}  // namespace vr
