#include "features/plan/frame_context.h"

#include "util/stopwatch.h"

namespace vr {

namespace {

uint64_t ToNanos(double ms) { return static_cast<uint64_t>(ms * 1e6); }

size_t BitIndex(Intermediate which) {
  uint32_t v = static_cast<uint32_t>(which);
  size_t i = 0;
  while (v > 1) {
    v >>= 1;
    ++i;
  }
  return i;
}

}  // namespace

const char* IntermediateName(uint32_t bit) {
  switch (bit) {
    case 0:
      return "gray";
    case 1:
      return "gray_histogram";
    case 2:
      return "hsv_plane";
    case 3:
      return "gray_float";
    default:
      return "unknown";
  }
}

PlanContext::PlanContext() : arena_(1u << 16) {}

void PlanContext::BeginFrame(const Image& img) {
  frame_ = &img;
  have_gray_ = false;
  have_histogram_ = false;
  have_hsv_ = false;
  have_gray_float_ = false;
  gray_view_ = nullptr;
  arena_.Reset();
  intermediate_ns_.fill(0);
}

const Image& PlanContext::Gray() {
  if (!have_gray_) {
    Stopwatch timer;
    if (frame_->channels() == 1) {
      gray_view_ = frame_;
    } else {
      // Same conversion ToGray performs, written into the reusable
      // plane (re-sized only when the frame geometry changes).
      if (gray_.width() != frame_->width() ||
          gray_.height() != frame_->height() || gray_.channels() != 1) {
        gray_ = Image(frame_->width(), frame_->height(), 1);
      }
      const Image& in = *frame_;
      for (int y = 0; y < in.height(); ++y) {
        for (int x = 0; x < in.width(); ++x) {
          gray_.At(x, y) = RgbToGray(in.PixelRgb(x, y));
        }
      }
      gray_view_ = &gray_;
    }
    have_gray_ = true;
    intermediate_ns_[BitIndex(Intermediate::kGray)] +=
        ToNanos(timer.ElapsedMillis());
  }
  return *gray_view_;
}

const GrayHistogram& PlanContext::Histogram() {
  if (!have_histogram_) {
    const Image& gray = Gray();
    Stopwatch timer;
    // Identical bins to ComputeGrayHistogram(frame): that helper also
    // reduces RGB pixels through RgbToGray before counting.
    histogram_ = GrayHistogram{};
    const uint8_t* data = gray.data();
    const size_t n = gray.PixelCount();
    for (size_t i = 0; i < n; ++i) ++histogram_.bins[data[i]];
    have_histogram_ = true;
    intermediate_ns_[BitIndex(Intermediate::kGrayHistogram)] +=
        ToNanos(timer.ElapsedMillis());
  }
  return histogram_;
}

const std::vector<Hsv>& PlanContext::HsvPlane() {
  if (!have_hsv_) {
    Stopwatch timer;
    const Image& in = *frame_;
    hsv_.clear();
    hsv_.reserve(in.PixelCount());
    for (int y = 0; y < in.height(); ++y) {
      for (int x = 0; x < in.width(); ++x) {
        hsv_.push_back(RgbToHsv(in.PixelRgb(x, y)));
      }
    }
    have_hsv_ = true;
    intermediate_ns_[BitIndex(Intermediate::kHsvPlane)] +=
        ToNanos(timer.ElapsedMillis());
  }
  return hsv_;
}

const FloatImage& PlanContext::GrayFloat() {
  if (!have_gray_float_) {
    Stopwatch timer;
    const Image& in = *frame_;
    if (gray_float_.width() != in.width() ||
        gray_float_.height() != in.height()) {
      gray_float_ = FloatImage(in.width(), in.height());
    }
    // FloatImage::FromImage's arithmetic: the unrounded float luma for
    // RGB, the raw byte for single-channel frames.
    for (int y = 0; y < in.height(); ++y) {
      for (int x = 0; x < in.width(); ++x) {
        if (in.channels() == 1) {
          gray_float_.At(x, y) = static_cast<float>(in.At(x, y));
        } else {
          const Rgb p = in.PixelRgb(x, y);
          gray_float_.At(x, y) = 0.299f * p.r + 0.587f * p.g + 0.114f * p.b;
        }
      }
    }
    have_gray_float_ = true;
    intermediate_ns_[BitIndex(Intermediate::kGrayFloat)] +=
        ToNanos(timer.ElapsedMillis());
  }
  return gray_float_;
}

void PlanContext::Materialize(uint32_t mask) {
  if (mask & static_cast<uint32_t>(Intermediate::kGray)) Gray();
  if (mask & static_cast<uint32_t>(Intermediate::kGrayHistogram)) Histogram();
  if (mask & static_cast<uint32_t>(Intermediate::kHsvPlane)) HsvPlane();
  if (mask & static_cast<uint32_t>(Intermediate::kGrayFloat)) GrayFloat();
}

}  // namespace vr
