#include "features/auto_correlogram.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "imaging/color.h"
#include "imaging/resize.h"

namespace vr {

AutoColorCorrelogram::AutoColorCorrelogram(int max_distance)
    : max_distance_(std::clamp(max_distance, 1, 16)) {}

Result<FeatureVector> AutoColorCorrelogram::Extract(const Image& img) const {
  if (img.empty()) return Status::InvalidArgument("empty image");
  // Cap the working size: the correlogram is O(pixels * max_distance^2)
  // and its statistics stabilize well below full resolution.
  Image work = img;
  if (work.width() > 256 || work.height() > 256) {
    const double s = 256.0 / std::max(work.width(), work.height());
    work = Resize(work, std::max(8, static_cast<int>(work.width() * s)),
                  std::max(8, static_cast<int>(work.height() * s)),
                  ResizeFilter::kBilinear);
  }
  const int w = work.width();
  const int h = work.height();

  std::vector<int> quant(static_cast<size_t>(w) * h);
  std::vector<uint64_t> color_count(kHsvQuantBins, 0);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const int q = QuantizeHsv(RgbToHsv(work.PixelRgb(x, y)));
      quant[static_cast<size_t>(y) * w + x] = q;
      ++color_count[static_cast<size_t>(q)];
    }
  }

  const int d_max = max_distance_;
  // counts[c][d-1] = same-color pairs at chessboard distance d;
  // ring_total[c][d-1] = in-image neighbors inspected from pixels of c.
  std::vector<double> counts(static_cast<size_t>(kHsvQuantBins) * d_max, 0.0);
  std::vector<double> ring_total(static_cast<size_t>(kHsvQuantBins) * d_max,
                                 0.0);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const int c = quant[static_cast<size_t>(y) * w + x];
      for (int d = 1; d <= d_max; ++d) {
        const size_t idx =
            static_cast<size_t>(c) * d_max + static_cast<size_t>(d - 1);
        // Chessboard ring of radius d: the square boundary.
        for (int dx = -d; dx <= d; ++dx) {
          for (int dy = -d; dy <= d; ++dy) {
            if (std::max(std::abs(dx), std::abs(dy)) != d) continue;
            const int nx = x + dx;
            const int ny = y + dy;
            if (nx < 0 || ny < 0 || nx >= w || ny >= h) continue;
            ring_total[idx] += 1.0;
            if (quant[static_cast<size_t>(ny) * w + nx] == c) {
              counts[idx] += 1.0;
            }
          }
        }
      }
    }
  }

  std::vector<double> feature(static_cast<size_t>(kHsvQuantBins) * d_max, 0.0);
  for (size_t i = 0; i < feature.size(); ++i) {
    feature[i] = ring_total[i] > 0 ? counts[i] / ring_total[i] : 0.0;
  }
  return FeatureVector(name(), std::move(feature));
}

double AutoColorCorrelogram::DistanceSpan(const double* a, size_t na,
                                          const double* b, size_t nb) const {
  // The d1 measure of Huang et al.: sum |a-b| / (1 + a + b).
  const size_t n = std::min(na, nb);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += std::fabs(a[i] - b[i]) / (1.0 + a[i] + b[i]);
  }
  return acc;
}

}  // namespace vr
