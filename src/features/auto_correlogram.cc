#include "features/auto_correlogram.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "features/plan/frame_context.h"
#include "imaging/color.h"
#include "imaging/resize.h"

namespace vr {

AutoColorCorrelogram::AutoColorCorrelogram(int max_distance)
    : max_distance_(std::clamp(max_distance, 1, 16)) {}

Result<FeatureVector> AutoColorCorrelogram::Extract(const Image& img) const {
  if (img.empty()) return Status::InvalidArgument("empty image");
  // Cap the working size: the correlogram is O(pixels * max_distance^2)
  // and its statistics stabilize well below full resolution.
  Image work = img;
  if (work.width() > 256 || work.height() > 256) {
    const double s = 256.0 / std::max(work.width(), work.height());
    work = Resize(work, std::max(8, static_cast<int>(work.width() * s)),
                  std::max(8, static_cast<int>(work.height() * s)),
                  ResizeFilter::kBilinear);
  }
  const int w = work.width();
  const int h = work.height();

  std::vector<int> quant(static_cast<size_t>(w) * h);
  std::vector<uint64_t> color_count(kHsvQuantBins, 0);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const int q = QuantizeHsv(RgbToHsv(work.PixelRgb(x, y)));
      quant[static_cast<size_t>(y) * w + x] = q;
      ++color_count[static_cast<size_t>(q)];
    }
  }

  const int d_max = max_distance_;
  // counts[c][d-1] = same-color pairs at chessboard distance d;
  // ring_total[c][d-1] = in-image neighbors inspected from pixels of c.
  std::vector<double> counts(static_cast<size_t>(kHsvQuantBins) * d_max, 0.0);
  std::vector<double> ring_total(static_cast<size_t>(kHsvQuantBins) * d_max,
                                 0.0);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const int c = quant[static_cast<size_t>(y) * w + x];
      for (int d = 1; d <= d_max; ++d) {
        const size_t idx =
            static_cast<size_t>(c) * d_max + static_cast<size_t>(d - 1);
        // Chessboard ring of radius d: the square boundary.
        for (int dx = -d; dx <= d; ++dx) {
          for (int dy = -d; dy <= d; ++dy) {
            if (std::max(std::abs(dx), std::abs(dy)) != d) continue;
            const int nx = x + dx;
            const int ny = y + dy;
            if (nx < 0 || ny < 0 || nx >= w || ny >= h) continue;
            ring_total[idx] += 1.0;
            if (quant[static_cast<size_t>(ny) * w + nx] == c) {
              counts[idx] += 1.0;
            }
          }
        }
      }
    }
  }

  std::vector<double> feature(static_cast<size_t>(kHsvQuantBins) * d_max, 0.0);
  for (size_t i = 0; i < feature.size(); ++i) {
    feature[i] = ring_total[i] > 0 ? counts[i] / ring_total[i] : 0.0;
  }
  return FeatureVector(name(), std::move(feature));
}

uint32_t AutoColorCorrelogram::SharedIntermediates() const {
  return static_cast<uint32_t>(Intermediate::kHsvPlane);
}

Result<FeatureVector> AutoColorCorrelogram::ExtractShared(
    const Image& img, PlanContext& ctx) const {
  if (img.empty()) return Status::InvalidArgument("empty image");
  if (img.width() > 256 || img.height() > 256) {
    // The shared HSV plane covers the full-resolution frame, but this
    // path needs the downscaled one — fall back to the legacy extractor.
    return Extract(img);
  }
  const int w = img.width();
  const int h = img.height();
  const size_t pixels = static_cast<size_t>(w) * h;

  // Quantized color plane from the shared HSV plane (built in the same
  // row-major order the legacy loop walks).
  Span<int> quant = ctx.arena().AllocSpan<int>(pixels);
  const std::vector<Hsv>& hsv = ctx.HsvPlane();
  for (size_t i = 0; i < pixels; ++i) {
    quant[i] = QuantizeHsv(hsv[i]);
  }

  const int d_max = max_distance_;
  const size_t dims = static_cast<size_t>(kHsvQuantBins) * d_max;
  // Pair counts accumulate sums of 1.0 — exact integers — so visiting
  // the ring cells row/column-wise (cache- and SIMD-friendly) instead
  // of the legacy dx/dy walk produces bit-identical totals: same cell
  // set, and integer addition is order-independent.
  Span<double> counts = ctx.arena().AllocSpan<double>(dims);
  Span<double> ring_total = ctx.arena().AllocSpan<double>(dims);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const int c = quant[static_cast<size_t>(y) * w + x];
      const bool interior =
          x >= d_max && y >= d_max && x + d_max < w && y + d_max < h;
      for (int d = 1; d <= d_max; ++d) {
        const size_t idx =
            static_cast<size_t>(c) * d_max + static_cast<size_t>(d - 1);
        if (interior) {
          // Every ring cell is in-image: top/bottom rows are contiguous
          // runs, sides are strided columns; no bounds checks.
          const int* top = quant.data() + static_cast<size_t>(y - d) * w +
                           (x - d);
          const int* bot = quant.data() + static_cast<size_t>(y + d) * w +
                           (x - d);
          int match = 0;
          const int len = 2 * d + 1;
          for (int i = 0; i < len; ++i) {
            match += (top[i] == c) + (bot[i] == c);
          }
          for (int yy = y - d + 1; yy <= y + d - 1; ++yy) {
            const int* row = quant.data() + static_cast<size_t>(yy) * w;
            match += (row[x - d] == c) + (row[x + d] == c);
          }
          ring_total[idx] += static_cast<double>(8 * d);
          counts[idx] += static_cast<double>(match);
        } else {
          // Boundary pixels: same chessboard ring, with clipping.
          for (int dy = -d; dy <= d; ++dy) {
            const int ny = y + dy;
            if (ny < 0 || ny >= h) continue;
            const int* row = quant.data() + static_cast<size_t>(ny) * w;
            const bool edge_row = dy == -d || dy == d;
            const int x0 = std::max(0, x - d);
            const int x1 = std::min(w - 1, x + d);
            if (edge_row) {
              for (int nx = x0; nx <= x1; ++nx) {
                ring_total[idx] += 1.0;
                if (row[nx] == c) counts[idx] += 1.0;
              }
            } else {
              if (x - d >= 0) {
                ring_total[idx] += 1.0;
                if (row[x - d] == c) counts[idx] += 1.0;
              }
              if (x + d < w) {
                ring_total[idx] += 1.0;
                if (row[x + d] == c) counts[idx] += 1.0;
              }
            }
          }
        }
      }
    }
  }

  std::vector<double> feature(dims, 0.0);
  for (size_t i = 0; i < dims; ++i) {
    feature[i] = ring_total[i] > 0 ? counts[i] / ring_total[i] : 0.0;
  }
  return FeatureVector(name(), std::move(feature));
}

double AutoColorCorrelogram::DistanceSpan(const double* a, size_t na,
                                          const double* b, size_t nb) const {
  // The d1 measure of Huang et al.: sum |a-b| / (1 + a + b).
  const size_t n = std::min(na, nb);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += std::fabs(a[i] - b[i]) / (1.0 + a[i] + b[i]);
  }
  return acc;
}

}  // namespace vr
