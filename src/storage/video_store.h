/// \file video_store.h
/// \brief The paper's VIDEO_STORE / KEY_FRAMES schema over the embedded
/// database (§3.4 "Database Design").
///
/// Columns mirror the paper's Oracle DDL: VIDEO_STORE(V_ID, V_NAME,
/// VIDEO ORDVideo -> BLOB, STREAM BLOB, DOSTORE DATE -> TEXT) and
/// KEY_FRAMES(I_ID, I_NAME, IMAGE ORDImage -> BLOB, MIN, MAX,
/// SCH/GLCM/GABOR/TAMURA VARCHAR -> TEXT, MAJORREGIONS, V_ID), extended
/// with TEXT columns for the remaining extractors (ACC, NAIVE, REGIONS)
/// so every Table-1 feature persists.

#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "features/feature_vector.h"
#include "storage/database.h"

namespace vr {

/// \brief One VIDEO_STORE row.
struct VideoRecord {
  int64_t v_id = 0;
  std::string v_name;
  std::vector<uint8_t> video;   ///< .vsv container bytes (ORDVideo)
  std::vector<uint8_t> stream;  ///< serialized key-frame id list (STREAM)
  std::string dostore;          ///< ingestion date (DOSTORE)
};

/// \brief One KEY_FRAMES row.
struct KeyFrameRecord {
  int64_t i_id = 0;
  std::string i_name;
  std::vector<uint8_t> image;  ///< PNM-encoded key frame (ORDImage)
  int64_t min = 0;             ///< range-finder bucket lower bound
  int64_t max = 255;           ///< range-finder bucket upper bound
  int64_t major_regions = 0;   ///< MAJORREGIONS column
  int64_t v_id = 0;            ///< owning video
  /// Feature strings keyed by extractor; stored in the TEXT columns.
  std::map<FeatureKind, FeatureVector> features;
};

/// \brief Typed facade over the two tables, with the paper's indexes.
class VideoStore {
 public:
  /// Opens/creates the store inside a database directory. Creates the
  /// (MIN, MAX) range index and the V_ID foreign-key index.
  static Result<std::unique_ptr<VideoStore>> Open(const std::string& dir);

  /// Same, with explicit database options (degraded open, custom Env).
  /// With options.paranoid = false a damaged table is quarantined: its
  /// accessors return Corruption while the other table keeps serving,
  /// and DamageReport() lists the casualties.
  static Result<std::unique_ptr<VideoStore>> Open(
      const std::string& dir, const DatabaseOptions& options);

  /// \name VIDEO_STORE operations (the Administrator role of Figure 2).
  /// @{
  Result<int64_t> PutVideo(const VideoRecord& record);
  Result<VideoRecord> GetVideo(int64_t v_id) const;
  Status DeleteVideo(int64_t v_id);  ///< cascades to key frames
  /// Lists v_id/v_name/dostore without materializing video blobs.
  Result<std::vector<VideoRecord>> ListVideos() const;
  /// Metadata search (the paper's "query ... as well on metadata"):
  /// case-sensitive substring match over V_NAME, blobs not materialized.
  Result<std::vector<VideoRecord>> FindVideosByName(
      const std::string& substring) const;
  /// @}

  /// \name KEY_FRAMES operations.
  /// @{
  Result<int64_t> PutKeyFrame(const KeyFrameRecord& record);
  /// Batch append: every record (with its i_id preassigned, like
  /// PutKeyFrame's caller does) is journaled under a single fsync and
  /// applied in order — the bulk-ingest commit path. All-or-nothing on
  /// journaling errors; see Database::InsertBatch for the contract.
  Status PutKeyFrames(const std::vector<KeyFrameRecord>& records);
  Result<KeyFrameRecord> GetKeyFrame(int64_t i_id) const;
  Status DeleteKeyFrame(int64_t i_id);
  /// Key-frame ids belonging to a video (via the V_ID index).
  Result<std::vector<int64_t>> KeyFrameIdsOfVideo(int64_t v_id) const;
  /// Key-frame ids whose (MIN, MAX) bucket equals the given range
  /// (via the composite index).
  Result<std::vector<int64_t>> KeyFrameIdsInRange(int64_t min,
                                                  int64_t max) const;
  /// Scans all key frames without materializing image blobs; the
  /// callback returns false to stop.
  Status ScanKeyFrames(
      const std::function<bool(const KeyFrameRecord&)>& cb) const;
  /// @}

  /// Next unused ids (maintained from the max at open). Calling these
  /// consumes the id.
  int64_t NextVideoId();
  int64_t NextKeyFrameId();

  /// Reads the id watermarks without consuming them. With
  /// KeyFrameCount() these form the generation handshake that
  /// validates the persisted FeatureMatrix cache (matrix_store.h).
  int64_t PeekNextVideoId() const { return next_video_id_; }
  int64_t PeekNextKeyFrameId() const { return next_key_frame_id_; }

  Result<uint64_t> VideoCount() const;
  Result<uint64_t> KeyFrameCount() const;

  /// Flushes everything and truncates the journal.
  Status Checkpoint() { return db_->Checkpoint(); }

  Database* database() { return db_.get(); }

  /// Aggregated buffer-pool statistics over both tables' page files
  /// (surfaced by the service stats RPC). Thread-safe.
  PagerStats GetPagerStats() const { return db_->GetPagerStats(); }

  /// Tables quarantined by a degraded open (empty when healthy).
  const std::vector<TableDamage>& DamageReport() const {
    return db_->DamageReport();
  }

  static constexpr const char* kVideoTable = "VIDEO_STORE";
  static constexpr const char* kKeyFrameTable = "KEY_FRAMES";
  static constexpr const char* kRangeIndex = "idx_min_max";
  static constexpr const char* kVideoIdIndex = "idx_v_id";

 private:
  VideoStore() = default;

  Result<KeyFrameRecord> RowToKeyFrame(const Row& row) const;
  static Result<Row> KeyFrameToRow(const KeyFrameRecord& record);
  /// Corruption when \p table (quarantined by a degraded open) is null.
  Status RequireHealthy(const Table* table, const char* name) const;

  std::unique_ptr<Database> db_;
  Table* videos_ = nullptr;
  Table* key_frames_ = nullptr;
  int64_t next_video_id_ = 1;
  int64_t next_key_frame_id_ = 1;
};

}  // namespace vr
