/// \file pager.h
/// \brief File-backed page store with an LRU buffer pool.
///
/// One Pager manages one storage file (heap, B+tree or blob file).
/// Page 0 is the file's meta page: magic, format version, page count,
/// free-list head, and two user fields (root page and a monotonic
/// counter) that the structures above store their anchors in.
///
/// On-disk format v2 appends a 64-bit FNV-1a checksum to every page,
/// so each on-disk slot is kPageSize + 8 bytes. The checksum covers
/// the kPageSize in-memory page bytes and is verified on every read,
/// turning silent media corruption into a Corruption status at Fetch
/// time. v1 files (no version field, no trailers) are still readable;
/// new files are always created as v2.

#pragma once

#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "storage/page.h"
#include "util/env.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace vr {

/// Cumulative buffer-pool statistics of one Pager (see Pager::GetStats).
struct PagerStats {
  uint64_t fetches = 0;            ///< Fetch calls (hits + misses)
  uint64_t hits = 0;               ///< served from the buffer pool
  uint64_t misses = 0;             ///< required a disk read
  uint64_t evictions = 0;          ///< pages written out of / dropped from the pool
  uint64_t checksum_failures = 0;  ///< v2 page reads that failed verification

  PagerStats& operator+=(const PagerStats& other) {
    fetches += other.fetches;
    hits += other.hits;
    misses += other.misses;
    evictions += other.evictions;
    checksum_failures += other.checksum_failures;
    return *this;
  }
};

/// Page-file format versions. v1 (the legacy format, identified by a
/// zero version field in the meta page) has bare kPageSize slots; v2
/// adds a u64 FNV-1a checksum trailer to every slot.
constexpr uint32_t kPagerFormatLegacy = 1;
constexpr uint32_t kPagerFormatCurrent = 2;

/// \brief Owns a page file: allocation, caching, write-back.
///
/// Thread-safety: the buffer pool (Fetch, MarkDirty, Allocate, Free,
/// Flush, Sync, VerifyAllPages, GetStats) and the meta accessors
/// (page_count, user_root, user_counter) are internally serialized by
/// one mutex; the lock→state relationships are annotated (GUARDED_BY /
/// REQUIRES) and verified by Clang's thread-safety analysis. The
/// *contents* of fetched pages are NOT synchronized — callers that
/// mutate page bytes must hold an exclusive lock above the pager (in
/// this codebase the RetrievalEngine's writer lock; see DESIGN.md
/// "Service layer & threading model").
class Pager {
 public:
  ~Pager();
  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Opens (or, with \p create_if_missing, creates) a page file. All
  /// I/O goes through \p env (Env::Default() when null).
  static Result<std::unique_ptr<Pager>> Open(const std::string& path,
                                             bool create_if_missing,
                                             size_t cache_pages = 256,
                                             Env* env = nullptr);

  /// Fetches a page through the buffer pool, verifying its checksum on
  /// the way in (v2 files). The returned pointer stays valid while the
  /// shared_ptr is held, even across eviction.
  Result<std::shared_ptr<Page>> Fetch(uint32_t page_id) EXCLUDES(mutex_);

  /// Marks a cached page dirty so Flush() writes it back. Returns
  /// NotFound (and logs) for ids that are not resident — a caller bug
  /// that previously went unnoticed and dropped the write.
  Status MarkDirty(uint32_t page_id) EXCLUDES(mutex_);

  /// Allocates a page (reusing the free list when possible); the page is
  /// fetched, zeroed, typed and marked dirty.
  Result<uint32_t> Allocate(PageType type) EXCLUDES(mutex_);

  /// Returns a page to the free list.
  Status Free(uint32_t page_id) EXCLUDES(mutex_);

  /// Writes all dirty pages and the meta page to the file.
  Status Flush() EXCLUDES(mutex_);

  /// Flush + make the file durable.
  Status Sync() EXCLUDES(mutex_);

  /// Re-reads every page (including the meta page) from the file and
  /// verifies its checksum; first failure wins. Reads the on-disk
  /// state, so call it on a freshly opened or flushed pager. On v1
  /// files only page readability is checked.
  Status VerifyAllPages() EXCLUDES(mutex_);

  uint32_t page_count() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return page_count_;
  }
  const std::string& path() const { return path_; }
  uint32_t format_version() const { return format_version_; }

  /// On-disk bytes per page slot for this file's format version.
  size_t SlotSize() const {
    return format_version_ >= 2 ? kPageSize + kChecksumSize : kPageSize;
  }

  /// \name User anchors persisted in the meta page.
  /// @{
  uint32_t user_root() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return user_root_;
  }
  void set_user_root(uint32_t root) EXCLUDES(mutex_);
  uint64_t user_counter() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return user_counter_;
  }
  void set_user_counter(uint64_t v) EXCLUDES(mutex_);
  /// @}

  /// Snapshot of the cumulative buffer-pool statistics. Thread-safe.
  PagerStats GetStats() const EXCLUDES(mutex_);

  /// \name Legacy stat accessors (storage microbenches). Thread-safe.
  /// @{
  uint64_t cache_hits() const { return GetStats().hits; }
  uint64_t cache_misses() const { return GetStats().misses; }
  /// @}

  static constexpr size_t kChecksumSize = 8;

 private:
  Pager() = default;

  struct CacheEntry {
    std::shared_ptr<Page> page;
    bool dirty = false;
    std::list<uint32_t>::iterator lru_it;
  };

  /// \name Unlocked implementations; callers hold mutex_.
  /// @{
  Result<std::shared_ptr<Page>> FetchLocked(uint32_t page_id)
      REQUIRES(mutex_);
  Status MarkDirtyLocked(uint32_t page_id) REQUIRES(mutex_);
  Status FlushLocked() REQUIRES(mutex_);
  Status ReadPageFromDisk(uint32_t page_id, Page* out) REQUIRES(mutex_);
  Status WritePageToDisk(uint32_t page_id, const Page& page)
      REQUIRES(mutex_);
  Status LoadMeta() REQUIRES(mutex_);
  Status StoreMeta() REQUIRES(mutex_);
  void Touch(uint32_t page_id, CacheEntry* entry) REQUIRES(mutex_);
  Status EvictIfNeeded() REQUIRES(mutex_);
  /// @}

  /// Serializes the buffer pool, the LRU list, the meta fields and the
  /// counters. path_, cache_capacity_ and format_version_ are set once
  /// in Open (before the pager is shared) and immutable afterwards, so
  /// they stay unguarded.
  mutable Mutex mutex_{LockLevel::kPager, "pager"};
  std::string path_;
  std::unique_ptr<EnvFile> file_ GUARDED_BY(mutex_);
  uint32_t format_version_ = kPagerFormatCurrent;
  uint32_t page_count_ GUARDED_BY(mutex_) = 1;  // meta page
  uint32_t free_head_ GUARDED_BY(mutex_) = kInvalidPageId;
  uint32_t user_root_ GUARDED_BY(mutex_) = kInvalidPageId;
  uint64_t user_counter_ GUARDED_BY(mutex_) = 0;
  bool meta_dirty_ GUARDED_BY(mutex_) = false;
  size_t cache_capacity_ = 256;
  std::unordered_map<uint32_t, CacheEntry> cache_ GUARDED_BY(mutex_);
  std::list<uint32_t> lru_ GUARDED_BY(mutex_);  // front = most recent
  PagerStats stats_ GUARDED_BY(mutex_);
};

}  // namespace vr
