/// \file pager.h
/// \brief File-backed page store with an LRU buffer pool.
///
/// One Pager manages one storage file (heap, B+tree or blob file).
/// Page 0 is the file's meta page: magic, page count, free-list head,
/// and two user fields (root page and a monotonic counter) that the
/// structures above store their anchors in.

#pragma once

#include <cstdio>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "storage/page.h"
#include "util/status.h"

namespace vr {

/// \brief Owns a page file: allocation, caching, write-back.
class Pager {
 public:
  ~Pager();
  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Opens (or, with \p create_if_missing, creates) a page file.
  static Result<std::unique_ptr<Pager>> Open(const std::string& path,
                                             bool create_if_missing,
                                             size_t cache_pages = 256);

  /// Fetches a page through the buffer pool. The returned pointer stays
  /// valid while the shared_ptr is held, even across eviction.
  Result<std::shared_ptr<Page>> Fetch(uint32_t page_id);

  /// Marks a cached page dirty so Flush() writes it back.
  void MarkDirty(uint32_t page_id);

  /// Allocates a page (reusing the free list when possible); the page is
  /// fetched, zeroed, typed and marked dirty.
  Result<uint32_t> Allocate(PageType type);

  /// Returns a page to the free list.
  Status Free(uint32_t page_id);

  /// Writes all dirty pages and the meta page to disk.
  Status Flush();

  /// Flush + fsync.
  Status Sync();

  uint32_t page_count() const { return page_count_; }
  const std::string& path() const { return path_; }

  /// \name User anchors persisted in the meta page.
  /// @{
  uint32_t user_root() const { return user_root_; }
  void set_user_root(uint32_t root);
  uint64_t user_counter() const { return user_counter_; }
  void set_user_counter(uint64_t v);
  /// @}

  /// Cache statistics (for the storage microbenches).
  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t cache_misses() const { return cache_misses_; }

 private:
  Pager() = default;

  struct CacheEntry {
    std::shared_ptr<Page> page;
    bool dirty = false;
    std::list<uint32_t>::iterator lru_it;
  };

  Status ReadPageFromDisk(uint32_t page_id, Page* out);
  Status WritePageToDisk(uint32_t page_id, const Page& page);
  Status LoadMeta();
  Status StoreMeta();
  void Touch(uint32_t page_id, CacheEntry* entry);
  Status EvictIfNeeded();

  std::string path_;
  std::FILE* file_ = nullptr;
  uint32_t page_count_ = 1;  // meta page
  uint32_t free_head_ = kInvalidPageId;
  uint32_t user_root_ = kInvalidPageId;
  uint64_t user_counter_ = 0;
  bool meta_dirty_ = false;
  size_t cache_capacity_ = 256;
  std::unordered_map<uint32_t, CacheEntry> cache_;
  std::list<uint32_t> lru_;  // front = most recent
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
};

}  // namespace vr
