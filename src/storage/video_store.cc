#include "storage/video_store.h"

#include <algorithm>

#include "storage/query.h"
#include "util/string_util.h"

namespace vr {

namespace {

// KEY_FRAMES column order.
enum KfCol : size_t {
  kIId = 0,
  kIName = 1,
  kImage = 2,
  kMin = 3,
  kMax = 4,
  kMajorRegions = 5,
  kVId = 6,
  kFeatureBase = 7,  // one TEXT column per FeatureKind, in enum order
};

// VIDEO_STORE column order.
enum VCol : size_t {
  kVIdCol = 0,
  kVName = 1,
  kVideoBlob = 2,
  kStreamBlob = 3,
  kDoStore = 4,
};

Result<Schema> VideoSchema() {
  return Schema::Create(
      {
          {"V_ID", ColumnType::kInt64, false},
          {"V_NAME", ColumnType::kText, true},
          {"VIDEO", ColumnType::kBlob, true},
          {"STREAM", ColumnType::kBlob, true},
          {"DOSTORE", ColumnType::kText, true},
      },
      "V_ID");
}

Result<Schema> KeyFrameSchema() {
  std::vector<Column> columns = {
      {"I_ID", ColumnType::kInt64, false},
      {"I_NAME", ColumnType::kText, true},
      {"IMAGE", ColumnType::kBlob, true},
      {"MIN", ColumnType::kInt64, false},
      {"MAX", ColumnType::kInt64, false},
      {"MAJORREGIONS", ColumnType::kInt64, true},
      {"V_ID", ColumnType::kInt64, false},
  };
  for (int i = 0; i < kNumFeatureKinds; ++i) {
    Column c;
    c.name = std::string("FEAT_") +
             ToLower(FeatureKindName(static_cast<FeatureKind>(i)));
    c.type = ColumnType::kText;
    c.nullable = true;
    columns.push_back(std::move(c));
  }
  return Schema::Create(std::move(columns), "I_ID");
}

}  // namespace

Result<std::unique_ptr<VideoStore>> VideoStore::Open(const std::string& dir) {
  DatabaseOptions options;
  options.create_if_missing = true;
  return Open(dir, options);
}

Result<std::unique_ptr<VideoStore>> VideoStore::Open(
    const std::string& dir, const DatabaseOptions& options) {
  auto store = std::unique_ptr<VideoStore>(new VideoStore());
  VR_ASSIGN_OR_RETURN(store->db_, Database::Open(dir, options));

  Result<Table*> videos = store->db_->GetTable(kVideoTable);
  if (videos.ok()) {
    store->videos_ = videos.value();
  } else if (videos.status().IsNotFound()) {
    VR_ASSIGN_OR_RETURN(Schema schema, VideoSchema());
    VR_ASSIGN_OR_RETURN(store->videos_,
                        store->db_->CreateTable(kVideoTable, schema));
  } else if (!videos.status().IsCorruption()) {
    return videos.status();
  }
  // Corruption = quarantined by a degraded open: leave the pointer
  // null; accessors report it, the other table keeps serving.

  Result<Table*> frames = store->db_->GetTable(kKeyFrameTable);
  if (frames.ok()) {
    store->key_frames_ = frames.value();
  } else if (frames.status().IsNotFound()) {
    VR_ASSIGN_OR_RETURN(Schema schema, KeyFrameSchema());
    VR_ASSIGN_OR_RETURN(store->key_frames_,
                        store->db_->CreateTable(kKeyFrameTable, schema));
    IndexSpec range_index;
    range_index.name = kRangeIndex;
    range_index.columns = {"MIN", "MAX"};
    range_index.bits = {8, 8};
    VR_RETURN_NOT_OK(store->db_->CreateIndex(kKeyFrameTable, range_index));
    IndexSpec vid_index;
    vid_index.name = kVideoIdIndex;
    vid_index.columns = {"V_ID"};
    vid_index.bits = {32};
    VR_RETURN_NOT_OK(store->db_->CreateIndex(kKeyFrameTable, vid_index));
  } else if (!frames.status().IsCorruption()) {
    return frames.status();
  }

  // Recover id counters (from whichever tables are healthy).
  if (store->videos_ != nullptr) {
    VR_RETURN_NOT_OK(store->videos_->Scan(
        [&](const Row& row) {
          store->next_video_id_ =
              std::max(store->next_video_id_, row[kVIdCol].AsInt64() + 1);
          return true;
        },
        /*resolve_blobs=*/false));
  }
  if (store->key_frames_ != nullptr) {
    VR_RETURN_NOT_OK(store->key_frames_->Scan(
        [&](const Row& row) {
          store->next_key_frame_id_ =
              std::max(store->next_key_frame_id_, row[kIId].AsInt64() + 1);
          return true;
        },
        /*resolve_blobs=*/false));
  }
  return store;
}

Status VideoStore::RequireHealthy(const Table* table,
                                  const char* name) const {
  if (table == nullptr) {
    return Status::Corruption(std::string(name) +
                              " is quarantined; see DamageReport()");
  }
  return Status::OK();
}

int64_t VideoStore::NextVideoId() { return next_video_id_++; }
int64_t VideoStore::NextKeyFrameId() { return next_key_frame_id_++; }

Result<int64_t> VideoStore::PutVideo(const VideoRecord& record) {
  Row row = {
      Value(record.v_id),
      Value(record.v_name),
      Value::Blob(record.video),
      Value::Blob(record.stream),
      Value(record.dostore),
  };
  VR_ASSIGN_OR_RETURN(int64_t pk, db_->Insert(kVideoTable, row));
  next_video_id_ = std::max(next_video_id_, pk + 1);
  return pk;
}

Result<VideoRecord> VideoStore::GetVideo(int64_t v_id) const {
  VR_RETURN_NOT_OK(RequireHealthy(videos_, kVideoTable));
  VR_ASSIGN_OR_RETURN(Row row, videos_->Get(v_id));
  VideoRecord out;
  out.v_id = row[kVIdCol].AsInt64();
  out.v_name = row[kVName].is_null() ? "" : row[kVName].AsText();
  if (row[kVideoBlob].is_blob()) out.video = row[kVideoBlob].AsBlob();
  if (row[kStreamBlob].is_blob()) out.stream = row[kStreamBlob].AsBlob();
  out.dostore = row[kDoStore].is_null() ? "" : row[kDoStore].AsText();
  return out;
}

Status VideoStore::DeleteVideo(int64_t v_id) {
  VR_ASSIGN_OR_RETURN(std::vector<int64_t> frame_ids,
                      KeyFrameIdsOfVideo(v_id));
  for (int64_t i_id : frame_ids) {
    VR_RETURN_NOT_OK(db_->Delete(kKeyFrameTable, i_id));
  }
  return db_->Delete(kVideoTable, v_id);
}

Result<std::vector<VideoRecord>> VideoStore::ListVideos() const {
  VR_RETURN_NOT_OK(RequireHealthy(videos_, kVideoTable));
  std::vector<VideoRecord> out;
  VR_RETURN_NOT_OK(videos_->Scan(
      [&](const Row& row) {
        VideoRecord rec;
        rec.v_id = row[kVIdCol].AsInt64();
        rec.v_name = row[kVName].is_null() ? "" : row[kVName].AsText();
        rec.dostore = row[kDoStore].is_null() ? "" : row[kDoStore].AsText();
        out.push_back(std::move(rec));
        return true;
      },
      /*resolve_blobs=*/false));
  std::sort(out.begin(), out.end(),
            [](const VideoRecord& a, const VideoRecord& b) {
              return a.v_id < b.v_id;
            });
  return out;
}

Result<std::vector<VideoRecord>> VideoStore::FindVideosByName(
    const std::string& substring) const {
  VR_RETURN_NOT_OK(RequireHealthy(videos_, kVideoTable));
  SelectQuery query;
  query.columns = {"V_ID", "V_NAME", "DOSTORE"};
  query.where = Compare("V_NAME", CompareOp::kContains, Value(substring));
  query.order_by = "V_ID";
  VR_ASSIGN_OR_RETURN(std::vector<Row> rows, ExecuteSelect(*videos_, query));
  std::vector<VideoRecord> out;
  out.reserve(rows.size());
  for (const Row& row : rows) {
    VideoRecord rec;
    rec.v_id = row[0].AsInt64();
    rec.v_name = row[1].is_null() ? "" : row[1].AsText();
    rec.dostore = row[2].is_null() ? "" : row[2].AsText();
    out.push_back(std::move(rec));
  }
  return out;
}

Result<Row> VideoStore::KeyFrameToRow(const KeyFrameRecord& record) {
  if (record.min < 0 || record.min > 255 || record.max < 0 ||
      record.max > 255) {
    return Status::InvalidArgument("MIN/MAX must lie in [0, 255]");
  }
  Row row;
  row.reserve(kFeatureBase + kNumFeatureKinds);
  row.push_back(Value(record.i_id));
  row.push_back(Value(record.i_name));
  row.push_back(Value::Blob(record.image));
  row.push_back(Value(record.min));
  row.push_back(Value(record.max));
  row.push_back(Value(record.major_regions));
  row.push_back(Value(record.v_id));
  for (int i = 0; i < kNumFeatureKinds; ++i) {
    auto it = record.features.find(static_cast<FeatureKind>(i));
    if (it == record.features.end()) {
      row.push_back(Value::Null());
    } else {
      row.push_back(Value(it->second.ToString()));
    }
  }
  return row;
}

Result<int64_t> VideoStore::PutKeyFrame(const KeyFrameRecord& record) {
  VR_ASSIGN_OR_RETURN(Row row, KeyFrameToRow(record));
  VR_ASSIGN_OR_RETURN(int64_t pk, db_->Insert(kKeyFrameTable, row));
  next_key_frame_id_ = std::max(next_key_frame_id_, pk + 1);
  return pk;
}

Status VideoStore::PutKeyFrames(const std::vector<KeyFrameRecord>& records) {
  if (records.empty()) return Status::OK();
  std::vector<Row> rows;
  rows.reserve(records.size());
  for (const KeyFrameRecord& record : records) {
    VR_ASSIGN_OR_RETURN(Row row, KeyFrameToRow(record));
    rows.push_back(std::move(row));
  }
  VR_RETURN_NOT_OK(db_->InsertBatch(kKeyFrameTable, rows));
  for (const KeyFrameRecord& record : records) {
    next_key_frame_id_ = std::max(next_key_frame_id_, record.i_id + 1);
  }
  return Status::OK();
}

Result<KeyFrameRecord> VideoStore::RowToKeyFrame(const Row& row) const {
  KeyFrameRecord out;
  out.i_id = row[kIId].AsInt64();
  out.i_name = row[kIName].is_null() ? "" : row[kIName].AsText();
  if (row[kImage].is_blob()) out.image = row[kImage].AsBlob();
  out.min = row[kMin].AsInt64();
  out.max = row[kMax].AsInt64();
  out.major_regions =
      row[kMajorRegions].is_null() ? 0 : row[kMajorRegions].AsInt64();
  out.v_id = row[kVId].AsInt64();
  for (int i = 0; i < kNumFeatureKinds; ++i) {
    const Value& cell = row[kFeatureBase + static_cast<size_t>(i)];
    if (cell.is_null()) continue;
    VR_ASSIGN_OR_RETURN(FeatureVector fv,
                        FeatureVector::FromString(cell.AsText()));
    out.features.emplace(static_cast<FeatureKind>(i), std::move(fv));
  }
  return out;
}

Result<KeyFrameRecord> VideoStore::GetKeyFrame(int64_t i_id) const {
  VR_RETURN_NOT_OK(RequireHealthy(key_frames_, kKeyFrameTable));
  VR_ASSIGN_OR_RETURN(Row row, key_frames_->Get(i_id));
  return RowToKeyFrame(row);
}

Status VideoStore::DeleteKeyFrame(int64_t i_id) {
  return db_->Delete(kKeyFrameTable, i_id);
}

Result<std::vector<int64_t>> VideoStore::KeyFrameIdsOfVideo(
    int64_t v_id) const {
  VR_RETURN_NOT_OK(RequireHealthy(key_frames_, kKeyFrameTable));
  std::vector<int64_t> out;
  VR_RETURN_NOT_OK(key_frames_->ScanIndexRange(
      kVideoIdIndex, v_id, v_id, [&](int64_t pk) {
        out.push_back(pk);
        return true;
      }));
  return out;
}

Result<std::vector<int64_t>> VideoStore::KeyFrameIdsInRange(
    int64_t min, int64_t max) const {
  VR_RETURN_NOT_OK(RequireHealthy(key_frames_, kKeyFrameTable));
  const int64_t packed = (min << 8) | max;
  std::vector<int64_t> out;
  VR_RETURN_NOT_OK(key_frames_->ScanIndexRange(
      kRangeIndex, packed, packed, [&](int64_t pk) {
        out.push_back(pk);
        return true;
      }));
  return out;
}

Status VideoStore::ScanKeyFrames(
    const std::function<bool(const KeyFrameRecord&)>& cb) const {
  VR_RETURN_NOT_OK(RequireHealthy(key_frames_, kKeyFrameTable));
  Status inner = Status::OK();
  VR_RETURN_NOT_OK(key_frames_->Scan(
      [&](const Row& row) {
        Result<KeyFrameRecord> record = RowToKeyFrame(row);
        if (!record.ok()) {
          inner = record.status();
          return false;
        }
        return cb(record.value());
      },
      /*resolve_blobs=*/false));
  return inner;
}

Result<uint64_t> VideoStore::VideoCount() const {
  VR_RETURN_NOT_OK(RequireHealthy(videos_, kVideoTable));
  return videos_->Count();
}

Result<uint64_t> VideoStore::KeyFrameCount() const {
  VR_RETURN_NOT_OK(RequireHealthy(key_frames_, kKeyFrameTable));
  return key_frames_->Count();
}

}  // namespace vr
