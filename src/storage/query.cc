#include "storage/query.h"

#include <algorithm>

#include "util/string_util.h"

namespace vr {

std::shared_ptr<Predicate> Compare(const std::string& column, CompareOp op,
                                   Value literal) {
  auto p = std::make_shared<Predicate>();
  p->kind = Predicate::Kind::kCompare;
  p->column = column;
  p->op = op;
  p->literal = std::move(literal);
  return p;
}

std::shared_ptr<Predicate> And(std::shared_ptr<Predicate> a,
                               std::shared_ptr<Predicate> b) {
  auto p = std::make_shared<Predicate>();
  p->kind = Predicate::Kind::kAnd;
  p->children = {std::move(a), std::move(b)};
  return p;
}

std::shared_ptr<Predicate> Or(std::shared_ptr<Predicate> a,
                              std::shared_ptr<Predicate> b) {
  auto p = std::make_shared<Predicate>();
  p->kind = Predicate::Kind::kOr;
  p->children = {std::move(a), std::move(b)};
  return p;
}

std::shared_ptr<Predicate> Not(std::shared_ptr<Predicate> a) {
  auto p = std::make_shared<Predicate>();
  p->kind = Predicate::Kind::kNot;
  p->children = {std::move(a)};
  return p;
}

std::shared_ptr<Predicate> IsNull(const std::string& column) {
  auto p = std::make_shared<Predicate>();
  p->kind = Predicate::Kind::kIsNull;
  p->column = column;
  return p;
}

namespace {

/// Three-valued comparison of two non-null values of the same type
/// family; InvalidArgument on type mismatch.
Result<int> CompareValues(const Value& a, const Value& b) {
  if (a.is_int64() && b.is_int64()) {
    if (a.AsInt64() < b.AsInt64()) return -1;
    return a.AsInt64() > b.AsInt64() ? 1 : 0;
  }
  // INT64 and DOUBLE compare numerically, as SQL would.
  if ((a.is_int64() || a.is_double()) && (b.is_int64() || b.is_double())) {
    const double x = a.is_int64() ? static_cast<double>(a.AsInt64())
                                  : a.AsDouble();
    const double y = b.is_int64() ? static_cast<double>(b.AsInt64())
                                  : b.AsDouble();
    if (x < y) return -1;
    return x > y ? 1 : 0;
  }
  if (a.is_text() && b.is_text()) {
    return a.AsText().compare(b.AsText()) < 0
               ? -1
               : (a.AsText() == b.AsText() ? 0 : 1);
  }
  if (a.is_blob() && b.is_blob()) {
    if (a.AsBlob() == b.AsBlob()) return 0;
    return a.AsBlob() < b.AsBlob() ? -1 : 1;
  }
  return Status::InvalidArgument("type mismatch in comparison");
}

}  // namespace

Result<bool> EvaluatePredicate(const Schema& schema, const Predicate& pred,
                               const Row& row) {
  switch (pred.kind) {
    case Predicate::Kind::kCompare: {
      VR_ASSIGN_OR_RETURN(size_t col, schema.ColumnIndex(pred.column));
      const Value& cell = row[col];
      // SQL semantics: comparisons against NULL are never true.
      if (cell.is_null() || pred.literal.is_null()) return false;
      if (pred.op == CompareOp::kContains) {
        if (!cell.is_text() || !pred.literal.is_text()) {
          return Status::InvalidArgument("CONTAINS needs TEXT operands");
        }
        return cell.AsText().find(pred.literal.AsText()) !=
               std::string::npos;
      }
      VR_ASSIGN_OR_RETURN(int cmp, CompareValues(cell, pred.literal));
      switch (pred.op) {
        case CompareOp::kEq:
          return cmp == 0;
        case CompareOp::kNe:
          return cmp != 0;
        case CompareOp::kLt:
          return cmp < 0;
        case CompareOp::kLe:
          return cmp <= 0;
        case CompareOp::kGt:
          return cmp > 0;
        case CompareOp::kGe:
          return cmp >= 0;
        case CompareOp::kContains:
          break;  // handled above
      }
      return Status::Internal("unhandled compare op");
    }
    case Predicate::Kind::kAnd: {
      for (const auto& child : pred.children) {
        VR_ASSIGN_OR_RETURN(bool v, EvaluatePredicate(schema, *child, row));
        if (!v) return false;
      }
      return true;
    }
    case Predicate::Kind::kOr: {
      for (const auto& child : pred.children) {
        VR_ASSIGN_OR_RETURN(bool v, EvaluatePredicate(schema, *child, row));
        if (v) return true;
      }
      return false;
    }
    case Predicate::Kind::kNot: {
      if (pred.children.empty()) {
        return Status::InvalidArgument("NOT needs a child");
      }
      VR_ASSIGN_OR_RETURN(bool v,
                          EvaluatePredicate(schema, *pred.children[0], row));
      return !v;
    }
    case Predicate::Kind::kIsNull: {
      VR_ASSIGN_OR_RETURN(size_t col, schema.ColumnIndex(pred.column));
      return row[col].is_null();
    }
  }
  return Status::Internal("unhandled predicate kind");
}

Result<std::vector<Row>> ExecuteSelect(const Table& table,
                                       const SelectQuery& query) {
  const Schema& schema = table.schema();
  // Resolve projection indices up front.
  std::vector<size_t> projection;
  for (const std::string& name : query.columns) {
    VR_ASSIGN_OR_RETURN(size_t idx, schema.ColumnIndex(name));
    projection.push_back(idx);
  }
  std::optional<size_t> order_col;
  if (!query.order_by.empty()) {
    VR_ASSIGN_OR_RETURN(size_t idx, schema.ColumnIndex(query.order_by));
    order_col = idx;
  }

  std::vector<Row> matched;
  Status inner = Status::OK();
  VR_RETURN_NOT_OK(table.Scan(
      [&](const Row& row) {
        if (query.where != nullptr) {
          Result<bool> keep = EvaluatePredicate(schema, *query.where, row);
          if (!keep.ok()) {
            inner = keep.status();
            return false;
          }
          if (!*keep) return true;
        }
        matched.push_back(row);
        // Without ordering, the limit can stop the scan early.
        if (!order_col.has_value() && query.limit > 0 &&
            matched.size() >= query.limit) {
          return false;
        }
        return true;
      },
      query.resolve_blobs));
  VR_RETURN_NOT_OK(inner);

  if (order_col.has_value()) {
    Status sort_status = Status::OK();
    std::stable_sort(matched.begin(), matched.end(),
                     [&](const Row& a, const Row& b) {
                       const Value& va = a[*order_col];
                       const Value& vb = b[*order_col];
                       if (va.is_null() || vb.is_null()) {
                         // NULLs first (before any non-null).
                         return va.is_null() && !vb.is_null();
                       }
                       Result<int> cmp = CompareValues(va, vb);
                       if (!cmp.ok()) {
                         sort_status = cmp.status();
                         return false;
                       }
                       return *cmp < 0;
                     });
    VR_RETURN_NOT_OK(sort_status);
    if (query.descending) std::reverse(matched.begin(), matched.end());
    if (query.limit > 0 && matched.size() > query.limit) {
      matched.resize(query.limit);
    }
  }

  if (projection.empty()) return matched;
  std::vector<Row> projected;
  projected.reserve(matched.size());
  for (Row& row : matched) {
    Row out;
    out.reserve(projection.size());
    for (size_t idx : projection) out.push_back(std::move(row[idx]));
    projected.push_back(std::move(out));
  }
  return projected;
}

Result<uint64_t> ExecuteCount(const Table& table,
                              const std::shared_ptr<Predicate>& where) {
  if (where == nullptr) return table.Count();
  uint64_t count = 0;
  Status inner = Status::OK();
  VR_RETURN_NOT_OK(table.Scan(
      [&](const Row& row) {
        Result<bool> keep = EvaluatePredicate(table.schema(), *where, row);
        if (!keep.ok()) {
          inner = keep.status();
          return false;
        }
        if (*keep) ++count;
        return true;
      },
      /*resolve_blobs=*/false));
  VR_RETURN_NOT_OK(inner);
  return count;
}

}  // namespace vr
