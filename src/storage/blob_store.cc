#include "storage/blob_store.h"

#include <algorithm>
#include <cstring>

#include "util/string_util.h"

namespace vr {

namespace {
// Blob page layout: [0] type, [4..7] next page, [8..11] used bytes,
// payload from byte 12.
constexpr uint32_t kBlobHeader = 12;
}  // namespace

uint32_t BlobStore::PayloadPerPage() { return kPageSize - kBlobHeader; }

Result<BlobRef> BlobStore::Put(const std::vector<uint8_t>& bytes) {
  BlobRef ref;
  ref.size = bytes.size();
  if (bytes.empty()) {
    // Even empty blobs get a head page so Delete/Get are uniform.
    VR_ASSIGN_OR_RETURN(ref.first_page, pager_->Allocate(PageType::kBlob));
    VR_ASSIGN_OR_RETURN(std::shared_ptr<Page> page,
                        pager_->Fetch(ref.first_page));
    page->set_next_page(kInvalidPageId);
    page->WriteAt<uint32_t>(8, 0);
    VR_RETURN_NOT_OK(pager_->MarkDirty(ref.first_page));
    return ref;
  }

  uint32_t prev_id = kInvalidPageId;
  size_t offset = 0;
  while (offset < bytes.size()) {
    const uint32_t chunk = static_cast<uint32_t>(
        std::min<size_t>(PayloadPerPage(), bytes.size() - offset));
    VR_ASSIGN_OR_RETURN(uint32_t page_id, pager_->Allocate(PageType::kBlob));
    VR_ASSIGN_OR_RETURN(std::shared_ptr<Page> page, pager_->Fetch(page_id));
    page->set_next_page(kInvalidPageId);
    page->WriteAt<uint32_t>(8, chunk);
    std::memcpy(page->data() + kBlobHeader, bytes.data() + offset, chunk);
    VR_RETURN_NOT_OK(pager_->MarkDirty(page_id));
    if (prev_id == kInvalidPageId) {
      ref.first_page = page_id;
    } else {
      VR_ASSIGN_OR_RETURN(std::shared_ptr<Page> prev, pager_->Fetch(prev_id));
      prev->set_next_page(page_id);
      VR_RETURN_NOT_OK(pager_->MarkDirty(prev_id));
    }
    prev_id = page_id;
    offset += chunk;
  }
  return ref;
}

Result<std::vector<uint8_t>> BlobStore::Get(const BlobRef& ref) const {
  std::vector<uint8_t> out;
  out.reserve(ref.size);
  uint32_t cur = ref.first_page;
  while (cur != kInvalidPageId && out.size() < ref.size) {
    VR_ASSIGN_OR_RETURN(std::shared_ptr<Page> page, pager_->Fetch(cur));
    if (page->type() != PageType::kBlob) {
      return Status::Corruption("blob chain reaches a non-blob page");
    }
    const uint32_t used = page->ReadAt<uint32_t>(8);
    if (used > PayloadPerPage()) {
      return Status::Corruption("blob page claims impossible payload");
    }
    out.insert(out.end(), page->data() + kBlobHeader,
               page->data() + kBlobHeader + used);
    cur = page->next_page();
  }
  if (out.size() != ref.size) {
    return Status::Corruption(
        StringPrintf("blob chain holds %zu bytes, expected %llu", out.size(),
                     static_cast<unsigned long long>(ref.size)));
  }
  return out;
}

Status BlobStore::Delete(const BlobRef& ref) {
  uint32_t cur = ref.first_page;
  while (cur != kInvalidPageId) {
    VR_ASSIGN_OR_RETURN(std::shared_ptr<Page> page, pager_->Fetch(cur));
    if (page->type() != PageType::kBlob) {
      return Status::Corruption("blob chain reaches a non-blob page");
    }
    const uint32_t next = page->next_page();
    VR_RETURN_NOT_OK(pager_->Free(cur));
    cur = next;
  }
  return Status::OK();
}

}  // namespace vr
