#include "storage/catalog.h"

#include <sstream>

#include "util/string_util.h"

namespace vr {

Result<Catalog> Catalog::Load(const std::string& path, Env* env) {
  if (env == nullptr) env = Env::Default();
  Catalog catalog;
  if (!env->FileExists(path)) return catalog;  // fresh database
  VR_ASSIGN_OR_RETURN(std::string contents, env->ReadFileToString(path));
  std::istringstream f(contents);
  std::string line;
  while (std::getline(f, line)) {
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const size_t sp1 = trimmed.find(' ');
    if (sp1 == std::string_view::npos) {
      return Status::Corruption("bad catalog line: " + line);
    }
    const std::string_view kind = trimmed.substr(0, sp1);
    const size_t sp2 = trimmed.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos) {
      return Status::Corruption("bad catalog line: " + line);
    }
    const std::string name(trimmed.substr(sp1 + 1, sp2 - sp1 - 1));
    const std::string rest(trimmed.substr(sp2 + 1));
    if (kind == "TABLE") {
      VR_ASSIGN_OR_RETURN(Schema schema, Schema::Parse(rest));
      VR_RETURN_NOT_OK(catalog.AddTable(name, schema));
    } else if (kind == "INDEX") {
      VR_ASSIGN_OR_RETURN(IndexSpec spec, IndexSpec::Parse(rest));
      VR_RETURN_NOT_OK(catalog.AddIndex(name, spec));
    } else {
      return Status::Corruption("unknown catalog entry: " + line);
    }
  }
  return catalog;
}

Status Catalog::Save(const std::string& path, Env* env) const {
  if (env == nullptr) env = Env::Default();
  std::ostringstream f;
  f << "# vretrieve catalog\n";
  for (const TableDef& t : tables_) {
    f << "TABLE " << t.name << " " << t.schema.Serialize() << "\n";
    for (const IndexSpec& idx : t.indexes) {
      f << "INDEX " << t.name << " " << idx.Serialize() << "\n";
    }
  }
  return env->WriteFileAtomic(path, f.str());
}

Status Catalog::AddTable(const std::string& name, const Schema& schema) {
  if (Find(name) != nullptr) {
    return Status::AlreadyExists("table exists: " + name);
  }
  tables_.push_back(TableDef{name, schema, {}});
  return Status::OK();
}

Status Catalog::AddIndex(const std::string& table, const IndexSpec& spec) {
  for (TableDef& t : tables_) {
    if (t.name != table) continue;
    for (const IndexSpec& existing : t.indexes) {
      if (existing.name == spec.name) {
        return Status::AlreadyExists("index exists: " + spec.name);
      }
    }
    t.indexes.push_back(spec);
    return Status::OK();
  }
  return Status::NotFound("no such table: " + table);
}

const Catalog::TableDef* Catalog::Find(const std::string& name) const {
  for (const TableDef& t : tables_) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

}  // namespace vr
