#include "storage/bplus_tree.h"

#include <cstring>

#include "util/string_util.h"

namespace vr {

namespace {

// Shared header offsets.
constexpr uint32_t kCountOffset = 8;
constexpr uint32_t kEntriesOffset = 12;

// Leaf entries: { i64 key, u32 page, u32 slot } = 16 bytes.
constexpr uint32_t kLeafEntrySize = 16;
constexpr uint32_t kLeafCapacity = (kPageSize - kEntriesOffset) / kLeafEntrySize;

// Internal: u32 child0 then { i64 key, u32 child } = 12 bytes per key.
constexpr uint32_t kInternalKeySize = 12;
constexpr uint32_t kInternalCapacity =
    (kPageSize - kEntriesOffset - 4) / kInternalKeySize;

uint16_t NodeCount(const Page& p) { return p.ReadAt<uint16_t>(kCountOffset); }
void SetNodeCount(Page* p, uint16_t n) { p->WriteAt<uint16_t>(kCountOffset, n); }

int64_t LeafKey(const Page& p, uint32_t i) {
  return p.ReadAt<int64_t>(kEntriesOffset + i * kLeafEntrySize);
}
Rid LeafRid(const Page& p, uint32_t i) {
  Rid rid;
  rid.page_id = p.ReadAt<uint32_t>(kEntriesOffset + i * kLeafEntrySize + 8);
  rid.slot = static_cast<uint16_t>(
      p.ReadAt<uint32_t>(kEntriesOffset + i * kLeafEntrySize + 12));
  return rid;
}
void SetLeafEntry(Page* p, uint32_t i, int64_t key, const Rid& rid) {
  p->WriteAt<int64_t>(kEntriesOffset + i * kLeafEntrySize, key);
  p->WriteAt<uint32_t>(kEntriesOffset + i * kLeafEntrySize + 8, rid.page_id);
  p->WriteAt<uint32_t>(kEntriesOffset + i * kLeafEntrySize + 12,
                       static_cast<uint32_t>(rid.slot));
}
void MoveLeafEntries(Page* dst, uint32_t dst_i, const Page& src, uint32_t src_i,
                     uint32_t n) {
  std::memmove(dst->data() + kEntriesOffset + dst_i * kLeafEntrySize,
               src.data() + kEntriesOffset + src_i * kLeafEntrySize,
               static_cast<size_t>(n) * kLeafEntrySize);
}

uint32_t InternalChild(const Page& p, uint32_t i) {
  // child i sits before key i; child 0 at kEntriesOffset.
  if (i == 0) return p.ReadAt<uint32_t>(kEntriesOffset);
  return p.ReadAt<uint32_t>(kEntriesOffset + 4 + (i - 1) * kInternalKeySize +
                            8);
}
int64_t InternalKey(const Page& p, uint32_t i) {
  return p.ReadAt<int64_t>(kEntriesOffset + 4 + i * kInternalKeySize);
}
void SetInternalChild(Page* p, uint32_t i, uint32_t child) {
  if (i == 0) {
    p->WriteAt<uint32_t>(kEntriesOffset, child);
  } else {
    p->WriteAt<uint32_t>(kEntriesOffset + 4 + (i - 1) * kInternalKeySize + 8,
                         child);
  }
}
void SetInternalKey(Page* p, uint32_t i, int64_t key) {
  p->WriteAt<int64_t>(kEntriesOffset + 4 + i * kInternalKeySize, key);
}

/// Binary search in a leaf; returns the first index with key >= target.
uint32_t LeafLowerBound(const Page& p, int64_t key) {
  uint32_t lo = 0;
  uint32_t hi = NodeCount(p);
  while (lo < hi) {
    const uint32_t mid = (lo + hi) / 2;
    if (LeafKey(p, mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Child index to descend into for \p key.
uint32_t InternalChildIndex(const Page& p, int64_t key) {
  const uint32_t n = NodeCount(p);
  uint32_t lo = 0;
  uint32_t hi = n;
  // First key strictly greater than target -> descend left of it.
  while (lo < hi) {
    const uint32_t mid = (lo + hi) / 2;
    if (InternalKey(p, mid) <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

Result<std::unique_ptr<BPlusTree>> BPlusTree::Open(Pager* pager) {
  auto tree = std::unique_ptr<BPlusTree>(new BPlusTree(pager));
  tree->root_ = pager->user_root();
  if (tree->root_ == kInvalidPageId) {
    VR_ASSIGN_OR_RETURN(tree->root_, pager->Allocate(PageType::kBTreeLeaf));
    VR_ASSIGN_OR_RETURN(std::shared_ptr<Page> page,
                        pager->Fetch(tree->root_));
    page->set_next_page(kInvalidPageId);
    SetNodeCount(page.get(), 0);
    VR_RETURN_NOT_OK(pager->MarkDirty(tree->root_));
    pager->set_user_root(tree->root_);
  }
  return tree;
}

Result<uint32_t> BPlusTree::FindLeaf(int64_t key,
                                     std::vector<uint32_t>* path) const {
  uint32_t cur = root_;
  while (true) {
    VR_ASSIGN_OR_RETURN(std::shared_ptr<Page> page, pager_->Fetch(cur));
    if (page->type() == PageType::kBTreeLeaf) return cur;
    if (page->type() != PageType::kBTreeInternal) {
      return Status::Corruption("B+tree descent hit a non-tree page");
    }
    if (path != nullptr) path->push_back(cur);
    cur = InternalChild(*page, InternalChildIndex(*page, key));
  }
}

Result<Rid> BPlusTree::Get(int64_t key) const {
  VR_ASSIGN_OR_RETURN(uint32_t leaf_id, FindLeaf(key, nullptr));
  VR_ASSIGN_OR_RETURN(std::shared_ptr<Page> leaf, pager_->Fetch(leaf_id));
  const uint32_t pos = LeafLowerBound(*leaf, key);
  if (pos < NodeCount(*leaf) && LeafKey(*leaf, pos) == key) {
    return LeafRid(*leaf, pos);
  }
  return Status::NotFound(
      StringPrintf("key %lld not in index", static_cast<long long>(key)));
}

Status BPlusTree::InsertIntoLeaf(uint32_t leaf_id, int64_t key, const Rid& rid,
                                 bool overwrite,
                                 std::optional<SplitResult>* split) {
  VR_ASSIGN_OR_RETURN(std::shared_ptr<Page> leaf, pager_->Fetch(leaf_id));
  const uint32_t n = NodeCount(*leaf);
  const uint32_t pos = LeafLowerBound(*leaf, key);
  if (pos < n && LeafKey(*leaf, pos) == key) {
    if (!overwrite) {
      return Status::AlreadyExists(StringPrintf(
          "duplicate key %lld", static_cast<long long>(key)));
    }
    SetLeafEntry(leaf.get(), pos, key, rid);
    VR_RETURN_NOT_OK(pager_->MarkDirty(leaf_id));
    return Status::OK();
  }
  if (n < kLeafCapacity) {
    MoveLeafEntries(leaf.get(), pos + 1, *leaf, pos, n - pos);
    SetLeafEntry(leaf.get(), pos, key, rid);
    SetNodeCount(leaf.get(), static_cast<uint16_t>(n + 1));
    VR_RETURN_NOT_OK(pager_->MarkDirty(leaf_id));
    return Status::OK();
  }

  // Split: right half moves to a new leaf.
  VR_ASSIGN_OR_RETURN(uint32_t new_id, pager_->Allocate(PageType::kBTreeLeaf));
  VR_ASSIGN_OR_RETURN(std::shared_ptr<Page> right, pager_->Fetch(new_id));
  // Re-fetch left in case allocation evicted it (shared_ptr keeps ours
  // alive but the cache copy is the same object, so this is just safety).
  const uint32_t mid = n / 2;
  SetNodeCount(right.get(), static_cast<uint16_t>(n - mid));
  MoveLeafEntries(right.get(), 0, *leaf, mid, n - mid);
  right->set_next_page(leaf->next_page());
  SetNodeCount(leaf.get(), static_cast<uint16_t>(mid));
  leaf->set_next_page(new_id);

  // Insert the pending key into the correct half.
  if (key < LeafKey(*right, 0)) {
    const uint32_t p = LeafLowerBound(*leaf, key);
    const uint32_t ln = NodeCount(*leaf);
    MoveLeafEntries(leaf.get(), p + 1, *leaf, p, ln - p);
    SetLeafEntry(leaf.get(), p, key, rid);
    SetNodeCount(leaf.get(), static_cast<uint16_t>(ln + 1));
  } else {
    const uint32_t p = LeafLowerBound(*right, key);
    const uint32_t rn = NodeCount(*right);
    MoveLeafEntries(right.get(), p + 1, *right, p, rn - p);
    SetLeafEntry(right.get(), p, key, rid);
    SetNodeCount(right.get(), static_cast<uint16_t>(rn + 1));
  }
  VR_RETURN_NOT_OK(pager_->MarkDirty(leaf_id));
  VR_RETURN_NOT_OK(pager_->MarkDirty(new_id));
  *split = SplitResult{LeafKey(*right, 0), new_id};
  return Status::OK();
}

Status BPlusTree::InsertIntoParents(std::vector<uint32_t>* path,
                                    SplitResult split) {
  while (true) {
    if (path->empty()) {
      // Grow a new root.
      VR_ASSIGN_OR_RETURN(uint32_t new_root,
                          pager_->Allocate(PageType::kBTreeInternal));
      VR_ASSIGN_OR_RETURN(std::shared_ptr<Page> root_page,
                          pager_->Fetch(new_root));
      SetNodeCount(root_page.get(), 1);
      SetInternalChild(root_page.get(), 0, root_);
      SetInternalKey(root_page.get(), 0, split.separator);
      SetInternalChild(root_page.get(), 1, split.new_page);
      VR_RETURN_NOT_OK(pager_->MarkDirty(new_root));
      root_ = new_root;
      pager_->set_user_root(root_);
      return Status::OK();
    }
    const uint32_t parent_id = path->back();
    path->pop_back();
    VR_ASSIGN_OR_RETURN(std::shared_ptr<Page> parent,
                        pager_->Fetch(parent_id));
    const uint32_t n = NodeCount(*parent);
    const uint32_t pos = InternalChildIndex(*parent, split.separator);
    if (n < kInternalCapacity) {
      // Shift keys/children right of pos.
      for (uint32_t i = n; i > pos; --i) {
        SetInternalKey(parent.get(), i, InternalKey(*parent, i - 1));
        SetInternalChild(parent.get(), i + 1, InternalChild(*parent, i));
      }
      SetInternalKey(parent.get(), pos, split.separator);
      SetInternalChild(parent.get(), pos + 1, split.new_page);
      SetNodeCount(parent.get(), static_cast<uint16_t>(n + 1));
      VR_RETURN_NOT_OK(pager_->MarkDirty(parent_id));
      return Status::OK();
    }

    // Split the internal node. Gather keys/children with the new entry
    // applied, then redistribute around a median that moves up.
    std::vector<int64_t> keys;
    std::vector<uint32_t> children;
    keys.reserve(n + 1);
    children.reserve(n + 2);
    for (uint32_t i = 0; i < n; ++i) keys.push_back(InternalKey(*parent, i));
    for (uint32_t i = 0; i <= n; ++i) {
      children.push_back(InternalChild(*parent, i));
    }
    keys.insert(keys.begin() + pos, split.separator);
    children.insert(children.begin() + pos + 1, split.new_page);

    const uint32_t total = static_cast<uint32_t>(keys.size());
    const uint32_t mid = total / 2;
    const int64_t up_key = keys[mid];

    VR_ASSIGN_OR_RETURN(uint32_t new_id,
                        pager_->Allocate(PageType::kBTreeInternal));
    VR_ASSIGN_OR_RETURN(std::shared_ptr<Page> right, pager_->Fetch(new_id));
    // Left keeps keys [0, mid), children [0, mid].
    SetNodeCount(parent.get(), static_cast<uint16_t>(mid));
    for (uint32_t i = 0; i < mid; ++i) {
      SetInternalKey(parent.get(), i, keys[i]);
    }
    for (uint32_t i = 0; i <= mid; ++i) {
      SetInternalChild(parent.get(), i, children[i]);
    }
    // Right takes keys (mid, total), children [mid+1, total].
    const uint32_t right_n = total - mid - 1;
    SetNodeCount(right.get(), static_cast<uint16_t>(right_n));
    for (uint32_t i = 0; i < right_n; ++i) {
      SetInternalKey(right.get(), i, keys[mid + 1 + i]);
    }
    for (uint32_t i = 0; i <= right_n; ++i) {
      SetInternalChild(right.get(), i, children[mid + 1 + i]);
    }
    VR_RETURN_NOT_OK(pager_->MarkDirty(parent_id));
    VR_RETURN_NOT_OK(pager_->MarkDirty(new_id));
    split = SplitResult{up_key, new_id};
  }
}

Status BPlusTree::Insert(int64_t key, const Rid& rid) {
  std::vector<uint32_t> path;
  VR_ASSIGN_OR_RETURN(uint32_t leaf_id, FindLeaf(key, &path));
  std::optional<SplitResult> split;
  VR_RETURN_NOT_OK(InsertIntoLeaf(leaf_id, key, rid, /*overwrite=*/false,
                                  &split));
  if (split.has_value()) {
    return InsertIntoParents(&path, *split);
  }
  return Status::OK();
}

Status BPlusTree::Upsert(int64_t key, const Rid& rid) {
  std::vector<uint32_t> path;
  VR_ASSIGN_OR_RETURN(uint32_t leaf_id, FindLeaf(key, &path));
  std::optional<SplitResult> split;
  VR_RETURN_NOT_OK(InsertIntoLeaf(leaf_id, key, rid, /*overwrite=*/true,
                                  &split));
  if (split.has_value()) {
    return InsertIntoParents(&path, *split);
  }
  return Status::OK();
}

Status BPlusTree::Delete(int64_t key) {
  VR_ASSIGN_OR_RETURN(uint32_t leaf_id, FindLeaf(key, nullptr));
  VR_ASSIGN_OR_RETURN(std::shared_ptr<Page> leaf, pager_->Fetch(leaf_id));
  const uint32_t n = NodeCount(*leaf);
  const uint32_t pos = LeafLowerBound(*leaf, key);
  if (pos >= n || LeafKey(*leaf, pos) != key) {
    return Status::NotFound(
        StringPrintf("key %lld not in index", static_cast<long long>(key)));
  }
  MoveLeafEntries(leaf.get(), pos, *leaf, pos + 1, n - pos - 1);
  SetNodeCount(leaf.get(), static_cast<uint16_t>(n - 1));
  VR_RETURN_NOT_OK(pager_->MarkDirty(leaf_id));
  return Status::OK();
}

Status BPlusTree::ScanRange(
    int64_t lo, int64_t hi,
    const std::function<bool(int64_t, const Rid&)>& cb) const {
  if (lo > hi) return Status::OK();
  VR_ASSIGN_OR_RETURN(uint32_t leaf_id, FindLeaf(lo, nullptr));
  uint32_t cur = leaf_id;
  while (cur != kInvalidPageId) {
    VR_ASSIGN_OR_RETURN(std::shared_ptr<Page> leaf, pager_->Fetch(cur));
    const uint32_t n = NodeCount(*leaf);
    for (uint32_t i = LeafLowerBound(*leaf, lo); i < n; ++i) {
      const int64_t key = LeafKey(*leaf, i);
      if (key > hi) return Status::OK();
      if (!cb(key, LeafRid(*leaf, i))) return Status::OK();
    }
    cur = leaf->next_page();
  }
  return Status::OK();
}

Status BPlusTree::ScanAll(
    const std::function<bool(int64_t, const Rid&)>& cb) const {
  return ScanRange(INT64_MIN, INT64_MAX, cb);
}

Result<uint64_t> BPlusTree::Count() const {
  uint64_t n = 0;
  VR_RETURN_NOT_OK(ScanAll([&n](int64_t, const Rid&) {
    ++n;
    return true;
  }));
  return n;
}

Result<int> BPlusTree::Height() const {
  int height = 1;
  uint32_t cur = root_;
  while (true) {
    VR_ASSIGN_OR_RETURN(std::shared_ptr<Page> page, pager_->Fetch(cur));
    if (page->type() == PageType::kBTreeLeaf) return height;
    cur = InternalChild(*page, 0);
    ++height;
  }
}

}  // namespace vr
