/// \file page.h
/// \brief Fixed-size pages and the slotted-page record layout.
///
/// Every storage file (heap, B+tree, blob chains) is an array of 8 KiB
/// pages. Page 0 of each file is a meta page. Record-bearing pages use
/// the classic slotted layout: a header, a slot directory growing from
/// the front, and record payloads growing from the back.

#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/status.h"

namespace vr {

inline constexpr uint32_t kPageSize = 8192;
inline constexpr uint32_t kInvalidPageId = 0;  // page 0 is the meta page

/// Kinds of pages, stored in the page header.
enum class PageType : uint8_t {
  kFree = 0,
  kMeta = 1,
  kSlotted = 2,
  kBTreeLeaf = 3,
  kBTreeInternal = 4,
  kBlob = 5,
  /// Header page of a persisted FeatureMatrix cache file (matrix.vrm);
  /// see retrieval/matrix_store.h and docs/FORMAT.md.
  kMatrixHeader = 6,
  /// Byte-stream data page of a persisted FeatureMatrix cache file.
  kMatrixData = 7,
};

/// \brief An 8 KiB buffer with typed field access helpers.
class Page {
 public:
  Page() : data_(kPageSize, 0) {}

  uint8_t* data() { return data_.data(); }
  const uint8_t* data() const { return data_.data(); }

  template <typename T>
  T ReadAt(uint32_t offset) const {
    T v{};
    std::memcpy(&v, data_.data() + offset, sizeof(T));
    return v;
  }
  template <typename T>
  void WriteAt(uint32_t offset, T v) {
    std::memcpy(data_.data() + offset, &v, sizeof(T));
  }

  PageType type() const { return static_cast<PageType>(ReadAt<uint8_t>(0)); }
  void set_type(PageType t) { WriteAt<uint8_t>(0, static_cast<uint8_t>(t)); }

  /// Generic "next page" link at a fixed header offset (slot 4..8).
  uint32_t next_page() const { return ReadAt<uint32_t>(4); }
  void set_next_page(uint32_t p) { WriteAt<uint32_t>(4, p); }

 private:
  std::vector<uint8_t> data_;
};

/// \brief Slotted-record operations over a Page.
///
/// Header layout (bytes): [0] type, [1..3] pad, [4..7] next_page,
/// [8..9] slot_count, [10..11] free_start, [12..13] free_end.
/// Slot entry: u16 offset, u16 length; offset 0 marks a dead slot.
class SlottedPage {
 public:
  /// Wraps a page; call Init() on fresh pages before use.
  explicit SlottedPage(Page* page) : page_(page) {}

  /// Formats the page as an empty slotted page.
  void Init();

  uint16_t slot_count() const { return page_->ReadAt<uint16_t>(8); }

  /// Contiguous free bytes available for one more record (including its
  /// slot entry).
  uint32_t FreeSpace() const;

  /// Inserts a record; returns its slot id or OutOfRange when full.
  Result<uint16_t> Insert(const std::vector<uint8_t>& record);

  /// Reads the record in \p slot; NotFound for dead/invalid slots.
  Result<std::vector<uint8_t>> Get(uint16_t slot) const;

  /// Marks \p slot dead. Space is reclaimed by Compact().
  Status Delete(uint16_t slot);

  /// True when the slot holds a live record.
  bool IsLive(uint16_t slot) const;

  /// Rewrites live records contiguously, reclaiming dead space.
  void Compact();

  /// Maximum record payload a single empty page can hold.
  static uint32_t MaxRecordSize();

 private:
  static constexpr uint32_t kHeaderSize = 14;
  static constexpr uint32_t kSlotSize = 4;

  uint16_t free_start() const { return page_->ReadAt<uint16_t>(10); }
  void set_free_start(uint16_t v) { page_->WriteAt<uint16_t>(10, v); }
  uint16_t free_end() const { return page_->ReadAt<uint16_t>(12); }
  void set_free_end(uint16_t v) { page_->WriteAt<uint16_t>(12, v); }
  void set_slot_count(uint16_t v) { page_->WriteAt<uint16_t>(8, v); }

  uint32_t SlotOffset(uint16_t slot) const {
    return kHeaderSize + kSlotSize * static_cast<uint32_t>(slot);
  }

  Page* page_;
};

}  // namespace vr
