/// \file table.h
/// \brief A table: schema + heap file + primary/secondary B+tree indexes
/// + blob store, each in its own page file under the database directory.

#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/blob_store.h"
#include "storage/bplus_tree.h"
#include "storage/heap_file.h"
#include "storage/row.h"
#include "storage/schema.h"
#include "util/env.h"

namespace vr {

/// \brief Declaration of a secondary index over 1..2 INT64 columns.
///
/// Keys are packed as (col bits | ...) << 32 | pk, so the index supports
/// duplicates; column values must fit their declared bit widths
/// (unsigned) and primary keys must fit 32 bits. That covers this
/// system's uses: the KEY_FRAMES (MIN, MAX) range index (8 bits each)
/// and the KEY_FRAMES V_ID foreign-key index (32 bits).
struct IndexSpec {
  std::string name;
  std::vector<std::string> columns;  // 1 or 2 INT64 column names
  std::vector<int> bits;             // per-column widths, sum <= 32

  /// "name;col:bits,col:bits" round-trip form for the catalog.
  std::string Serialize() const;
  static Result<IndexSpec> Parse(const std::string& text);
};

/// \brief Blob values larger than this stay inline in the heap record.
inline constexpr size_t kInlineBlobLimit = 512;

/// \brief Heap-backed table with pk and secondary indexes.
class Table {
 public:
  /// Opens/creates the table's files under \p dir, doing all I/O
  /// through \p env (Env::Default() when null).
  static Result<std::unique_ptr<Table>> Open(const std::string& dir,
                                             const std::string& name,
                                             const Schema& schema,
                                             bool create_if_missing,
                                             Env* env = nullptr);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Adds (and, if rows exist, backfills) a secondary index.
  Status CreateIndex(const IndexSpec& spec);

  /// Declared secondary indexes.
  std::vector<IndexSpec> indexes() const;

  /// Inserts a row; the primary key is taken from the row itself.
  /// AlreadyExists on pk collision.
  Result<int64_t> Insert(const Row& row);

  /// Inserts, replacing any existing row with the same pk.
  Result<int64_t> Upsert(const Row& row);

  /// Fetches by primary key, resolving out-of-row blobs.
  Result<Row> Get(int64_t pk) const;

  /// True when the pk exists.
  bool Exists(int64_t pk) const;

  /// Deletes by primary key (row, blobs, index entries).
  Status Delete(int64_t pk);

  /// Full scan in heap order; \p resolve_blobs controls whether blob
  /// columns are materialized (skipping them leaves NULL in their place,
  /// which is much faster when scanning metadata of large videos).
  /// The callback returns false to stop.
  Status Scan(const std::function<bool(const Row&)>& cb,
              bool resolve_blobs = true) const;

  /// Scans pks whose packed index value for \p index_name lies in
  /// [lo, hi] (values as packed by the IndexSpec, before the pk suffix).
  Status ScanIndexRange(const std::string& index_name, int64_t lo, int64_t hi,
                        const std::function<bool(int64_t pk)>& cb) const;

  /// Packs the indexed columns of \p row per \p spec (exposed for tests).
  static Result<int64_t> PackIndexValue(const Schema& schema,
                                        const IndexSpec& spec, const Row& row);

  /// Number of live rows.
  Result<uint64_t> Count() const;

  /// Flushes all page files.
  Status Flush();

  /// Flush + fsync all page files.
  Status Sync();

  /// \name Crash-recovery support (used by Database).
  /// @{
  /// Re-reads every page of every file, verifying checksums; first
  /// failure wins. Used by degraded open to quarantine damaged tables.
  Status VerifyIntegrity();

  /// Deletes heap records whose primary-key index entry is missing or
  /// points at a different rid — the fallout of a crash after the heap
  /// file was synced but before the pk index was. Returns the number of
  /// records removed.
  Result<uint64_t> ScrubOrphans();

  /// Best-effort removal of a possibly half-written row: every step
  /// (blob chain free, index entries, heap slot, pk entry) proceeds
  /// even when earlier ones fail. Used by replay before re-applying a
  /// journal record whose on-disk application is suspect.
  Status ForceRemove(int64_t pk);

  /// True when the stored row with \p pk materializes (blobs included)
  /// and re-serializes to exactly \p payload (a journal payload, blobs
  /// inline). Any read or decode failure counts as a mismatch.
  bool MatchesPayload(int64_t pk, const std::vector<uint8_t>& payload) const;
  /// @}

  /// Height of the pk index (storage microbench statistic).
  Result<int> PkIndexHeight() const { return pk_index_->Height(); }

  /// Aggregated buffer-pool statistics over every page file of this
  /// table (heap, pk index, blobs, secondary indexes). Thread-safe.
  PagerStats GetPagerStats() const;

 private:
  Table(std::string dir, std::string name, Schema schema)
      : dir_(std::move(dir)), name_(std::move(name)),
        schema_(std::move(schema)) {}

  struct SecondaryIndex {
    IndexSpec spec;
    std::unique_ptr<Pager> pager;
    std::unique_ptr<BPlusTree> tree;
  };

  Result<Row> MaterializeRow(const std::vector<uint8_t>& bytes,
                             bool resolve_blobs) const;
  Status InsertIndexEntries(const Row& row, int64_t pk, const Rid& rid);
  Status DeleteIndexEntries(const Row& row, int64_t pk);

  std::string dir_;
  std::string name_;
  Schema schema_;
  Env* env_ = nullptr;
  std::unique_ptr<Pager> heap_pager_;
  std::unique_ptr<Pager> pk_pager_;
  std::unique_ptr<Pager> blob_pager_;
  std::unique_ptr<HeapFile> heap_;
  std::unique_ptr<BPlusTree> pk_index_;
  std::unique_ptr<BlobStore> blobs_;
  std::vector<std::unique_ptr<SecondaryIndex>> secondary_;
};

}  // namespace vr
