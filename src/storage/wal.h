/// \file wal.h
/// \brief Logical write-ahead journal for crash recovery.
///
/// Every committed mutation (row insert / delete) is appended to the
/// journal — with blob values inlined — and fsync'd before the table
/// files are touched. On open, the database replays the journal
/// idempotently, so a crash between journal append and page flush loses
/// nothing. Checkpoint() truncates the journal after flushing all pages.
///
/// Record layout: u8 op | u16 table-name length | name | i64 pk |
/// u32 payload length | payload | u64 FNV-1a of everything before it.
/// A torn final record (short read or bad checksum) terminates replay
/// cleanly.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/env.h"
#include "util/status.h"

namespace vr {

/// Journal operations.
enum class WalOp : uint8_t {
  kInsert = 1,
  kDelete = 2,
};

/// One replayed journal record.
struct WalRecord {
  WalOp op = WalOp::kInsert;
  std::string table;
  int64_t pk = 0;
  std::vector<uint8_t> payload;  // serialized row for kInsert
};

/// \brief Append-only journal file.
class Wal {
 public:
  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Opens (creating if needed) the journal at \p path. All I/O goes
  /// through \p env (Env::Default() when null).
  static Result<std::unique_ptr<Wal>> Open(const std::string& path,
                                           Env* env = nullptr);

  /// Appends an insert record (payload = serialized row, blobs inline).
  Status AppendInsert(const std::string& table, int64_t pk,
                      const std::vector<uint8_t>& payload);

  /// Appends a delete record.
  Status AppendDelete(const std::string& table, int64_t pk);

  /// Flushes and fsyncs the journal.
  Status Sync();

  /// Replays every intact record from the start of the journal.
  Status Replay(const std::function<Status(const WalRecord&)>& cb);

  /// Empties the journal (after a checkpoint).
  Status Truncate();

  /// Current journal size in bytes.
  Result<uint64_t> SizeBytes() const;

 private:
  Wal() = default;
  Status Append(WalOp op, const std::string& table, int64_t pk,
                const std::vector<uint8_t>& payload);

  std::string path_;
  Env* env_ = nullptr;
  std::unique_ptr<EnvFile> file_;
};

}  // namespace vr
