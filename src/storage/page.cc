#include "storage/page.h"

#include "util/string_util.h"

namespace vr {

void SlottedPage::Init() {
  page_->set_type(PageType::kSlotted);
  page_->set_next_page(kInvalidPageId);
  set_slot_count(0);
  set_free_start(static_cast<uint16_t>(kHeaderSize));
  set_free_end(static_cast<uint16_t>(kPageSize));
}

uint32_t SlottedPage::FreeSpace() const {
  const uint32_t start = free_start();
  const uint32_t end = free_end();
  if (end <= start + kSlotSize) return 0;
  return end - start - kSlotSize;
}

uint32_t SlottedPage::MaxRecordSize() {
  return kPageSize - kHeaderSize - kSlotSize;
}

Result<uint16_t> SlottedPage::Insert(const std::vector<uint8_t>& record) {
  if (record.size() > MaxRecordSize()) {
    return Status::InvalidArgument(
        StringPrintf("record of %zu bytes exceeds page capacity %u",
                     record.size(), MaxRecordSize()));
  }
  if (record.size() > FreeSpace()) {
    // Try to reclaim dead-slot space first.
    Compact();
    if (record.size() > FreeSpace()) {
      return Status::OutOfRange("page full");
    }
  }
  const uint16_t slot = slot_count();
  const uint16_t rec_off =
      static_cast<uint16_t>(free_end() - static_cast<uint32_t>(record.size()));
  if (!record.empty()) {
    std::memcpy(page_->data() + rec_off, record.data(), record.size());
  }
  page_->WriteAt<uint16_t>(SlotOffset(slot), rec_off);
  page_->WriteAt<uint16_t>(SlotOffset(slot) + 2,
                           static_cast<uint16_t>(record.size()));
  set_slot_count(static_cast<uint16_t>(slot + 1));
  set_free_start(static_cast<uint16_t>(free_start() + kSlotSize));
  set_free_end(rec_off);
  return slot;
}

bool SlottedPage::IsLive(uint16_t slot) const {
  if (slot >= slot_count()) return false;
  return page_->ReadAt<uint16_t>(SlotOffset(slot)) != 0;
}

Result<std::vector<uint8_t>> SlottedPage::Get(uint16_t slot) const {
  if (slot >= slot_count()) {
    return Status::NotFound(StringPrintf("slot %u out of range", slot));
  }
  const uint16_t off = page_->ReadAt<uint16_t>(SlotOffset(slot));
  if (off == 0) {
    return Status::NotFound(StringPrintf("slot %u is dead", slot));
  }
  const uint16_t len = page_->ReadAt<uint16_t>(SlotOffset(slot) + 2);
  if (static_cast<uint32_t>(off) + len > kPageSize) {
    return Status::Corruption("slot points outside the page");
  }
  return std::vector<uint8_t>(page_->data() + off, page_->data() + off + len);
}

Status SlottedPage::Delete(uint16_t slot) {
  if (slot >= slot_count() || page_->ReadAt<uint16_t>(SlotOffset(slot)) == 0) {
    return Status::NotFound(StringPrintf("slot %u not live", slot));
  }
  page_->WriteAt<uint16_t>(SlotOffset(slot), 0);
  page_->WriteAt<uint16_t>(SlotOffset(slot) + 2, 0);
  return Status::OK();
}

void SlottedPage::Compact() {
  // Collect live records, clear the data area, re-place from the back
  // while keeping slot ids stable.
  const uint16_t n = slot_count();
  std::vector<std::pair<uint16_t, std::vector<uint8_t>>> live;
  for (uint16_t s = 0; s < n; ++s) {
    const uint16_t off = page_->ReadAt<uint16_t>(SlotOffset(s));
    if (off == 0) continue;
    const uint16_t len = page_->ReadAt<uint16_t>(SlotOffset(s) + 2);
    live.emplace_back(
        s, std::vector<uint8_t>(page_->data() + off, page_->data() + off + len));
  }
  uint16_t end = static_cast<uint16_t>(kPageSize);
  for (auto& [slot, record] : live) {
    end = static_cast<uint16_t>(end - record.size());
    std::memcpy(page_->data() + end, record.data(), record.size());
    page_->WriteAt<uint16_t>(SlotOffset(slot), end);
    page_->WriteAt<uint16_t>(SlotOffset(slot) + 2,
                             static_cast<uint16_t>(record.size()));
  }
  set_free_end(end);
}

}  // namespace vr
