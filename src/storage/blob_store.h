/// \file blob_store.h
/// \brief Large-object storage across chained overflow pages.
///
/// Stands in for Oracle's BLOB / ORDImage / ORDVideo columns: byte
/// strings of arbitrary size are split across a singly linked chain of
/// pages and addressed by a BlobRef (head page + size).

#pragma once

#include <memory>

#include "storage/pager.h"
#include "storage/row.h"

namespace vr {

/// \brief Put/Get/Delete of arbitrary-size byte strings.
class BlobStore {
 public:
  explicit BlobStore(Pager* pager) : pager_(pager) {}

  /// Writes \p bytes into a fresh page chain.
  Result<BlobRef> Put(const std::vector<uint8_t>& bytes);

  /// Reads a blob back.
  Result<std::vector<uint8_t>> Get(const BlobRef& ref) const;

  /// Frees the blob's page chain.
  Status Delete(const BlobRef& ref);

  /// Bytes of payload stored per page.
  static uint32_t PayloadPerPage();

 private:
  Pager* pager_;
};

}  // namespace vr
