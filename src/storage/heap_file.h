/// \file heap_file.h
/// \brief Unordered record storage over a chain of slotted pages.

#pragma once

#include <functional>
#include <memory>

#include "storage/pager.h"

namespace vr {

/// \brief Record id: page + slot.
struct Rid {
  uint32_t page_id = kInvalidPageId;
  uint16_t slot = 0;

  bool operator==(const Rid&) const = default;
  bool valid() const { return page_id != kInvalidPageId; }
};

/// \brief Heap file over a Pager (the pager's user_root anchors the
/// first data page). Records must fit in one page; larger payloads go
/// through the BlobStore.
class HeapFile {
 public:
  /// Attaches to \p pager, creating the first data page if absent.
  static Result<std::unique_ptr<HeapFile>> Open(Pager* pager);

  /// Appends a record; returns its Rid.
  Result<Rid> Insert(const std::vector<uint8_t>& record);

  /// Reads a record.
  Result<std::vector<uint8_t>> Get(const Rid& rid) const;

  /// Deletes a record (slot becomes dead; space reclaimed on demand).
  Status Delete(const Rid& rid);

  /// Replaces a record; the Rid may change when the new payload no
  /// longer fits in place.
  Result<Rid> Update(const Rid& rid, const std::vector<uint8_t>& record);

  /// Visits every live record in chain order. The callback returns
  /// false to stop early.
  Status Scan(
      const std::function<bool(const Rid&, const std::vector<uint8_t>&)>& cb)
      const;

  /// Number of live records (walks the chain).
  Result<uint64_t> Count() const;

 private:
  explicit HeapFile(Pager* pager) : pager_(pager) {}

  Pager* pager_;
  uint32_t first_page_ = kInvalidPageId;
  uint32_t tail_page_ = kInvalidPageId;
};

}  // namespace vr
