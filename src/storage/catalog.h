/// \file catalog.h
/// \brief Persistent catalog of table definitions and index specs.
///
/// A small text file (`catalog.vcat`) inside the database directory:
///   TABLE <name> <serialized schema>
///   INDEX <table> <serialized index spec>

#pragma once

#include <string>
#include <vector>

#include "storage/schema.h"
#include "storage/table.h"
#include "util/env.h"

namespace vr {

/// \brief In-memory catalog with load/save.
class Catalog {
 public:
  struct TableDef {
    std::string name;
    Schema schema;
    std::vector<IndexSpec> indexes;
  };

  /// Loads the catalog file via \p env (Env::Default() when null); a
  /// missing file yields an empty catalog.
  static Result<Catalog> Load(const std::string& path, Env* env = nullptr);

  /// Writes the catalog file atomically (write temp + sync + rename).
  Status Save(const std::string& path, Env* env = nullptr) const;

  /// Registers a table; AlreadyExists when the name is taken.
  Status AddTable(const std::string& name, const Schema& schema);

  /// Registers an index on an existing table.
  Status AddIndex(const std::string& table, const IndexSpec& spec);

  /// Lookup; nullptr when absent.
  const TableDef* Find(const std::string& name) const;

  const std::vector<TableDef>& tables() const { return tables_; }

 private:
  std::vector<TableDef> tables_;
};

}  // namespace vr
