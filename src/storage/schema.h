/// \file schema.h
/// \brief Table schemas for the embedded store.

#pragma once

#include <string>
#include <vector>

#include "storage/value.h"
#include "util/status.h"

namespace vr {

/// \brief One column definition.
struct Column {
  std::string name;
  ColumnType type = ColumnType::kInt64;
  bool nullable = true;

  bool operator==(const Column&) const = default;
};

/// \brief Ordered column list with an int64 primary key column.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema; \p primary_key names the INT64 key column.
  static Result<Schema> Create(std::vector<Column> columns,
                               const std::string& primary_key);

  const std::vector<Column>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  size_t primary_key_index() const { return pk_index_; }
  const Column& primary_key() const { return columns_[pk_index_]; }

  /// Index of a column by name, or NotFound.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Validates a row's arity, types and pk/nullability constraints.
  Status ValidateRow(const std::vector<Value>& row) const;

  /// One-line text form used by the catalog file; round-trips via Parse.
  std::string Serialize() const;
  static Result<Schema> Parse(const std::string& text);

  bool operator==(const Schema&) const = default;

 private:
  std::vector<Column> columns_;
  size_t pk_index_ = 0;
};

}  // namespace vr
