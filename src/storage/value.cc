#include "storage/value.h"

#include "util/string_util.h"

namespace vr {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "INT64";
    case ColumnType::kDouble:
      return "DOUBLE";
    case ColumnType::kText:
      return "TEXT";
    case ColumnType::kBlob:
      return "BLOB";
  }
  return "UNKNOWN";
}

Result<ColumnType> ColumnTypeFromName(const std::string& name) {
  for (ColumnType t : {ColumnType::kInt64, ColumnType::kDouble,
                       ColumnType::kText, ColumnType::kBlob}) {
    if (name == ColumnTypeName(t)) return t;
  }
  return Status::InvalidArgument("unknown column type: " + name);
}

bool Value::Matches(ColumnType type) const {
  if (is_null()) return true;
  switch (type) {
    case ColumnType::kInt64:
      return is_int64();
    case ColumnType::kDouble:
      return is_double();
    case ColumnType::kText:
      return is_text();
    case ColumnType::kBlob:
      return is_blob();
  }
  return false;
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int64()) return std::to_string(AsInt64());
  if (is_double()) return FormatDouble(AsDouble());
  if (is_text()) return "'" + AsText() + "'";
  return StringPrintf("<blob %zu bytes>", AsBlob().size());
}

}  // namespace vr
