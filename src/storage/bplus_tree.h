/// \file bplus_tree.h
/// \brief Disk-resident B+tree mapping int64 keys to record ids.
///
/// Used as the primary-key index of every table and, with encoded
/// composite keys, as the (min, max) range index that backs the paper's
/// histogram range-finder lookups.
///
/// Node layout (within a Page):
///   leaf:     [0] type, [4..7] next leaf, [8..9] count,
///             entries from byte 12: { i64 key, u32 page, u32 slot }
///   internal: [0] type, [8..9] key count,
///             from byte 12: u32 child0, then { i64 key, u32 child } * count
///
/// Deletion removes entries from leaves without rebalancing (empty
/// leaves stay in the chain); this keeps the structure simple and is
/// harmless for this workload, where deletes are rare relative to
/// inserts and scans.

#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "storage/heap_file.h"
#include "storage/pager.h"

namespace vr {

/// \brief Unique-key B+tree over a Pager (user_root anchors the root).
class BPlusTree {
 public:
  /// Attaches to \p pager, creating an empty tree if none exists.
  static Result<std::unique_ptr<BPlusTree>> Open(Pager* pager);

  /// Inserts a key; AlreadyExists on duplicates.
  Status Insert(int64_t key, const Rid& rid);

  /// Inserts or overwrites a key.
  Status Upsert(int64_t key, const Rid& rid);

  /// Point lookup.
  Result<Rid> Get(int64_t key) const;

  /// Removes a key; NotFound when absent.
  Status Delete(int64_t key);

  /// Visits entries with lo <= key <= hi in key order; callback returns
  /// false to stop.
  Status ScanRange(int64_t lo, int64_t hi,
                   const std::function<bool(int64_t, const Rid&)>& cb) const;

  /// Visits every entry in key order.
  Status ScanAll(const std::function<bool(int64_t, const Rid&)>& cb) const;

  /// Number of entries (walks the leaf chain).
  Result<uint64_t> Count() const;

  /// Tree height (1 = just a root leaf).
  Result<int> Height() const;

  /// Encodes a (min, max) gray-range pair as one composite key, ordered
  /// by (min, max) — used by the KEY_FRAMES (MIN, MAX) index.
  static int64_t EncodeComposite(int32_t hi_part, int32_t lo_part) {
    return (static_cast<int64_t>(static_cast<uint32_t>(hi_part)) << 32) |
           static_cast<uint32_t>(lo_part);
  }

 private:
  explicit BPlusTree(Pager* pager) : pager_(pager) {}

  struct SplitResult {
    int64_t separator = 0;
    uint32_t new_page = kInvalidPageId;
  };

  Result<uint32_t> FindLeaf(int64_t key,
                            std::vector<uint32_t>* path) const;
  Status InsertIntoLeaf(uint32_t leaf_id, int64_t key, const Rid& rid,
                        bool overwrite, std::optional<SplitResult>* split);
  Status InsertIntoParents(std::vector<uint32_t>* path, SplitResult split);

  Pager* pager_;
  uint32_t root_ = kInvalidPageId;
};

}  // namespace vr
