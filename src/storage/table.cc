#include "storage/table.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace vr {

std::string IndexSpec::Serialize() const {
  std::vector<std::string> cols;
  for (size_t i = 0; i < columns.size(); ++i) {
    cols.push_back(columns[i] + ":" + std::to_string(bits[i]));
  }
  return name + ";" + Join(cols, ",");
}

Result<IndexSpec> IndexSpec::Parse(const std::string& text) {
  const std::vector<std::string> halves = Split(text, ';');
  if (halves.size() != 2) return Status::Corruption("bad index spec text");
  IndexSpec spec;
  spec.name = halves[0];
  for (const std::string& part : Split(halves[1], ',', /*skip_empty=*/true)) {
    const std::vector<std::string> fields = Split(part, ':');
    if (fields.size() != 2) return Status::Corruption("bad index column");
    spec.columns.push_back(fields[0]);
    VR_ASSIGN_OR_RETURN(int64_t b, ParseInt64(fields[1]));
    spec.bits.push_back(static_cast<int>(b));
  }
  return spec;
}

Result<std::unique_ptr<Table>> Table::Open(const std::string& dir,
                                           const std::string& name,
                                           const Schema& schema,
                                           bool create_if_missing, Env* env) {
  if (env == nullptr) env = Env::Default();
  auto table = std::unique_ptr<Table>(new Table(dir, name, schema));
  table->env_ = env;
  const std::string base = dir + "/" + name;
  VR_ASSIGN_OR_RETURN(
      table->heap_pager_,
      Pager::Open(base + ".heap", create_if_missing, 256, env));
  VR_ASSIGN_OR_RETURN(
      table->pk_pager_,
      Pager::Open(base + ".pk.btree", create_if_missing, 256, env));
  VR_ASSIGN_OR_RETURN(
      table->blob_pager_,
      Pager::Open(base + ".blobs", create_if_missing, 256, env));
  VR_ASSIGN_OR_RETURN(table->heap_, HeapFile::Open(table->heap_pager_.get()));
  VR_ASSIGN_OR_RETURN(table->pk_index_,
                      BPlusTree::Open(table->pk_pager_.get()));
  table->blobs_ = std::make_unique<BlobStore>(table->blob_pager_.get());
  return table;
}

Result<int64_t> Table::PackIndexValue(const Schema& schema,
                                      const IndexSpec& spec, const Row& row) {
  if (spec.columns.empty() || spec.columns.size() > 2 ||
      spec.columns.size() != spec.bits.size()) {
    return Status::InvalidArgument("index spec needs 1..2 columns with bits");
  }
  int total_bits = 0;
  for (int b : spec.bits) total_bits += b;
  if (total_bits > 32) {
    return Status::InvalidArgument("index key exceeds 32 bits");
  }
  int64_t packed = 0;
  for (size_t i = 0; i < spec.columns.size(); ++i) {
    VR_ASSIGN_OR_RETURN(size_t col, schema.ColumnIndex(spec.columns[i]));
    if (schema.columns()[col].type != ColumnType::kInt64) {
      return Status::InvalidArgument("index column must be INT64: " +
                                     spec.columns[i]);
    }
    if (row[col].is_null()) {
      return Status::InvalidArgument("NULL in indexed column " +
                                     spec.columns[i]);
    }
    const int64_t v = row[col].AsInt64();
    const int64_t limit = int64_t{1} << spec.bits[i];
    if (v < 0 || v >= limit) {
      return Status::OutOfRange(StringPrintf(
          "value %lld does not fit %d-bit index column %s",
          static_cast<long long>(v), spec.bits[i], spec.columns[i].c_str()));
    }
    packed = (packed << spec.bits[i]) | v;
  }
  return packed;
}

Status Table::CreateIndex(const IndexSpec& spec) {
  for (const auto& existing : secondary_) {
    if (existing->spec.name == spec.name) {
      return Status::AlreadyExists("index exists: " + spec.name);
    }
  }
  auto index = std::make_unique<SecondaryIndex>();
  index->spec = spec;
  const std::string path = dir_ + "/" + name_ + "." + spec.name + ".btree";
  VR_ASSIGN_OR_RETURN(index->pager, Pager::Open(path, true, 256, env_));
  VR_ASSIGN_OR_RETURN(index->tree, BPlusTree::Open(index->pager.get()));

  // Backfill from existing rows if the index file is empty.
  VR_ASSIGN_OR_RETURN(uint64_t existing_entries, index->tree->Count());
  if (existing_entries == 0) {
    SecondaryIndex* raw = index.get();
    Status backfill = Status::OK();
    VR_RETURN_NOT_OK(heap_->Scan(
        [&](const Rid& rid, const std::vector<uint8_t>& bytes) {
          Result<DecodedRow> decoded = DeserializeRow(schema_, bytes);
          if (!decoded.ok()) {
            backfill = decoded.status();
            return false;
          }
          const int64_t pk =
              decoded->values[schema_.primary_key_index()].AsInt64();
          Result<int64_t> packed =
              PackIndexValue(schema_, raw->spec, decoded->values);
          if (!packed.ok()) {
            backfill = packed.status();
            return false;
          }
          const int64_t key = (packed.value() << 32) |
                              (pk & 0xFFFFFFFFLL);
          backfill = raw->tree->Insert(key, rid);
          return backfill.ok();
        }));
    VR_RETURN_NOT_OK(backfill);
  }
  secondary_.push_back(std::move(index));
  return Status::OK();
}

std::vector<IndexSpec> Table::indexes() const {
  std::vector<IndexSpec> out;
  for (const auto& idx : secondary_) out.push_back(idx->spec);
  return out;
}

Status Table::InsertIndexEntries(const Row& row, int64_t pk, const Rid& rid) {
  for (const auto& idx : secondary_) {
    VR_ASSIGN_OR_RETURN(int64_t packed,
                        PackIndexValue(schema_, idx->spec, row));
    VR_RETURN_NOT_OK(idx->tree->Insert((packed << 32) | (pk & 0xFFFFFFFFLL),
                                       rid));
  }
  return Status::OK();
}

Status Table::DeleteIndexEntries(const Row& row, int64_t pk) {
  for (const auto& idx : secondary_) {
    VR_ASSIGN_OR_RETURN(int64_t packed,
                        PackIndexValue(schema_, idx->spec, row));
    VR_RETURN_NOT_OK(idx->tree->Delete((packed << 32) | (pk & 0xFFFFFFFFLL)));
  }
  return Status::OK();
}

Result<int64_t> Table::Insert(const Row& row) {
  VR_RETURN_NOT_OK(schema_.ValidateRow(row));
  const int64_t pk = row[schema_.primary_key_index()].AsInt64();
  if (!secondary_.empty() && (pk < 0 || pk > INT32_MAX)) {
    return Status::OutOfRange(
        "primary key must fit 32 bits when secondary indexes exist");
  }
  if (Exists(pk)) {
    return Status::AlreadyExists(StringPrintf(
        "%s: pk %lld exists", name_.c_str(), static_cast<long long>(pk)));
  }

  // Externalize large blob and text values (VARCHAR -> CLOB style).
  std::vector<std::optional<BlobRef>> refs(row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    if (schema_.columns()[i].type == ColumnType::kBlob && row[i].is_blob() &&
        row[i].AsBlob().size() > kInlineBlobLimit) {
      VR_ASSIGN_OR_RETURN(BlobRef ref, blobs_->Put(row[i].AsBlob()));
      refs[i] = ref;
    } else if (schema_.columns()[i].type == ColumnType::kText &&
               row[i].is_text() &&
               row[i].AsText().size() > kInlineBlobLimit) {
      const std::string& text = row[i].AsText();
      VR_ASSIGN_OR_RETURN(
          BlobRef ref,
          blobs_->Put(std::vector<uint8_t>(text.begin(), text.end())));
      refs[i] = ref;
    }
  }
  VR_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                      SerializeRowWithRefs(schema_, row, refs));
  VR_ASSIGN_OR_RETURN(Rid rid, heap_->Insert(bytes));
  VR_RETURN_NOT_OK(pk_index_->Insert(pk, rid));
  VR_RETURN_NOT_OK(InsertIndexEntries(row, pk, rid));
  return pk;
}

Result<int64_t> Table::Upsert(const Row& row) {
  VR_RETURN_NOT_OK(schema_.ValidateRow(row));
  const int64_t pk = row[schema_.primary_key_index()].AsInt64();
  if (Exists(pk)) {
    VR_RETURN_NOT_OK(Delete(pk));
  }
  return Insert(row);
}

bool Table::Exists(int64_t pk) const { return pk_index_->Get(pk).ok(); }

Result<Row> Table::MaterializeRow(const std::vector<uint8_t>& bytes,
                                  bool resolve_blobs) const {
  VR_ASSIGN_OR_RETURN(DecodedRow decoded, DeserializeRow(schema_, bytes));
  for (size_t i = 0; i < decoded.values.size(); ++i) {
    if (!decoded.blob_refs[i].has_value()) continue;
    const bool is_text = schema_.columns()[i].type == ColumnType::kText;
    // Overflowed TEXT always resolves (queries need it); BLOB columns
    // resolve only on request — skipping them is what makes metadata
    // scans over multi-megabyte video rows cheap.
    if (!is_text && !resolve_blobs) continue;
    VR_ASSIGN_OR_RETURN(std::vector<uint8_t> blob,
                        blobs_->Get(*decoded.blob_refs[i]));
    if (is_text) {
      decoded.values[i] = Value(std::string(blob.begin(), blob.end()));
    } else {
      decoded.values[i] = Value::Blob(std::move(blob));
    }
  }
  return decoded.values;
}

Result<Row> Table::Get(int64_t pk) const {
  VR_ASSIGN_OR_RETURN(Rid rid, pk_index_->Get(pk));
  VR_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, heap_->Get(rid));
  return MaterializeRow(bytes, /*resolve_blobs=*/true);
}

Status Table::Delete(int64_t pk) {
  VR_ASSIGN_OR_RETURN(Rid rid, pk_index_->Get(pk));
  VR_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, heap_->Get(rid));
  VR_ASSIGN_OR_RETURN(DecodedRow decoded, DeserializeRow(schema_, bytes));
  for (const auto& ref : decoded.blob_refs) {
    if (ref.has_value()) {
      VR_RETURN_NOT_OK(blobs_->Delete(*ref));
    }
  }
  VR_RETURN_NOT_OK(DeleteIndexEntries(decoded.values, pk));
  VR_RETURN_NOT_OK(heap_->Delete(rid));
  VR_RETURN_NOT_OK(pk_index_->Delete(pk));
  return Status::OK();
}

Status Table::Scan(const std::function<bool(const Row&)>& cb,
                   bool resolve_blobs) const {
  Status inner = Status::OK();
  VR_RETURN_NOT_OK(
      heap_->Scan([&](const Rid&, const std::vector<uint8_t>& bytes) {
        Result<Row> row = MaterializeRow(bytes, resolve_blobs);
        if (!row.ok()) {
          inner = row.status();
          return false;
        }
        return cb(row.value());
      }));
  return inner;
}

Status Table::ScanIndexRange(const std::string& index_name, int64_t lo,
                             int64_t hi,
                             const std::function<bool(int64_t pk)>& cb) const {
  for (const auto& idx : secondary_) {
    if (idx->spec.name != index_name) continue;
    if (lo > hi) return Status::OK();
    const int64_t key_lo = lo << 32;
    const int64_t key_hi = (hi << 32) | 0xFFFFFFFFLL;
    return idx->tree->ScanRange(key_lo, key_hi,
                                [&](int64_t key, const Rid&) {
                                  return cb(key & 0xFFFFFFFFLL);
                                });
  }
  return Status::NotFound("no such index: " + index_name);
}

Result<uint64_t> Table::Count() const { return pk_index_->Count(); }

PagerStats Table::GetPagerStats() const {
  PagerStats total;
  total += heap_pager_->GetStats();
  total += pk_pager_->GetStats();
  total += blob_pager_->GetStats();
  for (const auto& idx : secondary_) {
    total += idx->pager->GetStats();
  }
  return total;
}

Status Table::Flush() {
  VR_RETURN_NOT_OK(heap_pager_->Flush());
  VR_RETURN_NOT_OK(pk_pager_->Flush());
  VR_RETURN_NOT_OK(blob_pager_->Flush());
  for (const auto& idx : secondary_) {
    VR_RETURN_NOT_OK(idx->pager->Flush());
  }
  return Status::OK();
}

Status Table::Sync() {
  VR_RETURN_NOT_OK(heap_pager_->Sync());
  VR_RETURN_NOT_OK(pk_pager_->Sync());
  VR_RETURN_NOT_OK(blob_pager_->Sync());
  for (const auto& idx : secondary_) {
    VR_RETURN_NOT_OK(idx->pager->Sync());
  }
  return Status::OK();
}

Status Table::VerifyIntegrity() {
  VR_RETURN_NOT_OK(heap_pager_->VerifyAllPages());
  VR_RETURN_NOT_OK(pk_pager_->VerifyAllPages());
  VR_RETURN_NOT_OK(blob_pager_->VerifyAllPages());
  for (const auto& idx : secondary_) {
    VR_RETURN_NOT_OK(idx->pager->VerifyAllPages());
  }
  return Status::OK();
}

Result<uint64_t> Table::ScrubOrphans() {
  // A crash between the heap sync and the pk-index sync leaves heap
  // records the index has never heard of; replaying the journal would
  // then insert a second copy, and scans would see phantoms. Collect
  // first, delete after — deleting while scanning would shift live
  // slots under the scan.
  std::vector<Rid> orphans;
  VR_RETURN_NOT_OK(
      heap_->Scan([&](const Rid& rid, const std::vector<uint8_t>& bytes) {
        Result<DecodedRow> decoded = DeserializeRow(schema_, bytes);
        if (!decoded.ok()) {
          // Undecodable record: torn heap write; drop it too.
          orphans.push_back(rid);
          return true;
        }
        const int64_t pk =
            decoded->values[schema_.primary_key_index()].AsInt64();
        Result<Rid> indexed = pk_index_->Get(pk);
        if (!indexed.ok() || !(indexed.value() == rid)) {
          orphans.push_back(rid);
        }
        return true;
      }));
  for (const Rid& rid : orphans) {
    VR_RETURN_NOT_OK(heap_->Delete(rid));
  }
  if (!orphans.empty()) {
    VR_LOG(Warn) << name_ << ": scrubbed " << orphans.size()
                 << " orphan heap record(s) left by a crash";
  }
  return static_cast<uint64_t>(orphans.size());
}

Status Table::ForceRemove(int64_t pk) {
  Result<Rid> rid = pk_index_->Get(pk);
  if (rid.ok()) {
    Result<std::vector<uint8_t>> bytes = heap_->Get(rid.value());
    if (bytes.ok()) {
      Result<DecodedRow> decoded = DeserializeRow(schema_, bytes.value());
      if (decoded.ok()) {
        for (const auto& ref : decoded->blob_refs) {
          // Blob chains may be half-written or reverted; BlobStore
          // type-checks pages before freeing, so a failed free here
          // leaks at worst — it never frees a live page.
          if (ref.has_value()) (void)blobs_->Delete(*ref);
        }
        (void)DeleteIndexEntries(decoded->values, pk);
      }
      (void)heap_->Delete(rid.value());
    }
    VR_RETURN_NOT_OK(pk_index_->Delete(pk));
  }
  return Status::OK();
}

bool Table::MatchesPayload(int64_t pk,
                           const std::vector<uint8_t>& payload) const {
  Result<Rid> rid = pk_index_->Get(pk);
  if (!rid.ok()) return false;
  Result<std::vector<uint8_t>> bytes = heap_->Get(rid.value());
  if (!bytes.ok()) return false;
  Result<Row> row = MaterializeRow(bytes.value(), /*resolve_blobs=*/true);
  if (!row.ok()) return false;
  Result<std::vector<uint8_t>> serialized = SerializeRow(schema_, row.value());
  return serialized.ok() && serialized.value() == payload;
}

}  // namespace vr
