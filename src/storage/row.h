/// \file row.h
/// \brief Row (de)serialization against a schema.
///
/// Wire format per row: for each column, a 1-byte tag (0 = NULL,
/// otherwise ColumnType + 1) followed by the payload: 8 bytes for
/// int64/double, u32 length + bytes for text/blob. Blob columns may
/// instead carry tag 0xFE (blob reference: u32 first page + u64 size),
/// which the Table layer resolves through the blob store.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "storage/schema.h"
#include "storage/value.h"
#include "util/status.h"

namespace vr {

/// \brief Reference to an out-of-row blob (overflow chain head + size).
struct BlobRef {
  uint32_t first_page = 0;
  uint64_t size = 0;

  bool operator==(const BlobRef&) const = default;
};

/// Tag marking an out-of-row blob in a serialized row.
inline constexpr uint8_t kBlobRefTag = 0xFE;

/// A row is an ordered vector of Values.
using Row = std::vector<Value>;

/// Serializes \p row (must validate against \p schema). Blob values are
/// stored inline; the Table layer swaps them for BlobRefs before calling
/// this when they exceed its inline threshold.
Result<std::vector<uint8_t>> SerializeRow(const Schema& schema,
                                          const Row& row);

/// Deserialized row where blob columns may be references.
struct DecodedRow {
  Row values;
  /// For each column: the BlobRef if the serialized form held one.
  std::vector<std::optional<BlobRef>> blob_refs;
};

/// Parses a serialized row.
Result<DecodedRow> DeserializeRow(const Schema& schema,
                                  const std::vector<uint8_t>& bytes);

/// Serializes a row whose blob columns are replaced by refs where
/// \p refs[i] is set (the value at those positions is ignored).
Result<std::vector<uint8_t>> SerializeRowWithRefs(
    const Schema& schema, const Row& row,
    const std::vector<std::optional<BlobRef>>& refs);

}  // namespace vr
