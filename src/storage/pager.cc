#include "storage/pager.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/hash.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace vr {

namespace {
constexpr uint32_t kMetaMagic = 0x56504746;  // "VPGF"
// Meta-page offset of the format version. Reads as 0 in v1 files,
// which never wrote this field.
constexpr size_t kVersionOffset = 32;
}  // namespace

Pager::~Pager() {
  MutexLock lock(mutex_);
  if (file_ != nullptr) {
    Status s = FlushLocked();
    if (!s.ok()) {
      VR_LOG(Error) << "final flush of " << path_ << " failed: "
                    << s.ToString();
    }
  }
}

Result<std::unique_ptr<Pager>> Pager::Open(const std::string& path,
                                           bool create_if_missing,
                                           size_t cache_pages, Env* env) {
  if (env == nullptr) env = Env::Default();
  auto pager = std::unique_ptr<Pager>(new Pager());
  pager->path_ = path;
  pager->cache_capacity_ = std::max<size_t>(8, cache_pages);

  const bool exists = env->FileExists(path);
  if (!exists && !create_if_missing) {
    return Status::IOError("cannot open page file: " + path);
  }
  // Nobody else can reach this pager yet; the lock is taken purely to
  // satisfy the REQUIRES contracts of the meta/file helpers.
  MutexLock lock(pager->mutex_);
  VR_ASSIGN_OR_RETURN(
      pager->file_,
      env->Open(path, exists ? Env::OpenMode::kMustExist
                             : Env::OpenMode::kCreateIfMissing));
  if (exists) {
    VR_RETURN_NOT_OK(pager->LoadMeta());
  } else {
    pager->format_version_ = kPagerFormatCurrent;
    pager->meta_dirty_ = true;
    VR_RETURN_NOT_OK(pager->StoreMeta());
    // A fresh file must be recoverable immediately: make the meta page
    // durable before anyone can journal against it.
    VR_RETURN_NOT_OK(pager->file_->Sync());
  }
  return pager;
}

Status Pager::LoadMeta() {
  // Manual read: the slot size depends on the version field inside the
  // very page being read, so bootstrap from the bare page bytes first.
  Page meta;
  VR_ASSIGN_OR_RETURN(size_t got, file_->ReadAt(0, meta.data(), kPageSize));
  if (got != kPageSize) {
    return Status::Corruption("short meta page read from " + path_);
  }
  if (meta.ReadAt<uint32_t>(8) != kMetaMagic) {
    return Status::Corruption("bad page-file magic: " + path_);
  }
  const uint32_t version = meta.ReadAt<uint32_t>(kVersionOffset);
  format_version_ = version == 0 ? kPagerFormatLegacy : version;
  if (format_version_ > kPagerFormatCurrent) {
    return Status::Corruption(StringPrintf(
        "unsupported page-file format v%u in %s", format_version_,
        path_.c_str()));
  }
  if (format_version_ >= 2) {
    uint64_t stored = 0;
    VR_ASSIGN_OR_RETURN(size_t cs_got,
                        file_->ReadAt(kPageSize, &stored, kChecksumSize));
    if (cs_got != kChecksumSize) {
      return Status::Corruption("short meta checksum read from " + path_);
    }
    if (stored != Fnv1a64(meta.data(), kPageSize)) {
      return Status::Corruption("meta page checksum mismatch in " + path_);
    }
  }
  page_count_ = meta.ReadAt<uint32_t>(12);
  free_head_ = meta.ReadAt<uint32_t>(16);
  user_root_ = meta.ReadAt<uint32_t>(20);
  user_counter_ = meta.ReadAt<uint64_t>(24);
  if (page_count_ == 0) return Status::Corruption("zero page count");
  return Status::OK();
}

Status Pager::StoreMeta() {
  Page meta;
  meta.set_type(PageType::kMeta);
  meta.WriteAt<uint32_t>(8, kMetaMagic);
  meta.WriteAt<uint32_t>(12, page_count_);
  meta.WriteAt<uint32_t>(16, free_head_);
  meta.WriteAt<uint32_t>(20, user_root_);
  meta.WriteAt<uint64_t>(24, user_counter_);
  if (format_version_ >= 2) {
    meta.WriteAt<uint32_t>(kVersionOffset, format_version_);
  }
  VR_RETURN_NOT_OK(WritePageToDisk(0, meta));
  meta_dirty_ = false;
  return Status::OK();
}

Status Pager::ReadPageFromDisk(uint32_t page_id, Page* out) {
  const size_t slot = SlotSize();
  std::vector<uint8_t> buf(slot);
  VR_ASSIGN_OR_RETURN(
      size_t got,
      file_->ReadAt(static_cast<uint64_t>(page_id) * slot, buf.data(), slot));
  if (got != slot) {
    return Status::Corruption(StringPrintf(
        "short page read (page %u) from %s", page_id, path_.c_str()));
  }
  if (format_version_ >= 2) {
    uint64_t stored = 0;
    std::memcpy(&stored, buf.data() + kPageSize, kChecksumSize);
    if (stored != Fnv1a64(buf.data(), kPageSize)) {
      ++stats_.checksum_failures;
      return Status::Corruption(StringPrintf(
          "page checksum mismatch (page %u) in %s", page_id, path_.c_str()));
    }
  }
  std::memcpy(out->data(), buf.data(), kPageSize);
  return Status::OK();
}

Status Pager::WritePageToDisk(uint32_t page_id, const Page& page) {
  const size_t slot = SlotSize();
  std::vector<uint8_t> buf(slot);
  std::memcpy(buf.data(), page.data(), kPageSize);
  if (format_version_ >= 2) {
    const uint64_t checksum = Fnv1a64(page.data(), kPageSize);
    std::memcpy(buf.data() + kPageSize, &checksum, kChecksumSize);
  }
  return file_->WriteAt(static_cast<uint64_t>(page_id) * slot, buf.data(),
                        slot);
}

Status Pager::VerifyAllPages() {
  MutexLock lock(mutex_);
  Page scratch;
  for (uint32_t page_id = 0; page_id < page_count_; ++page_id) {
    VR_RETURN_NOT_OK(ReadPageFromDisk(page_id, &scratch));
  }
  return Status::OK();
}

PagerStats Pager::GetStats() const {
  MutexLock lock(mutex_);
  return stats_;
}

void Pager::Touch(uint32_t page_id, CacheEntry* entry) {
  lru_.erase(entry->lru_it);
  lru_.push_front(page_id);
  entry->lru_it = lru_.begin();
}

Status Pager::EvictIfNeeded() {
  while (cache_.size() > cache_capacity_) {
    // Evict from the LRU tail, skipping pages still referenced outside.
    bool evicted = false;
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      auto centry = cache_.find(*it);
      if (centry == cache_.end()) continue;
      if (centry->second.page.use_count() > 1) continue;  // pinned
      if (centry->second.dirty) {
        VR_RETURN_NOT_OK(WritePageToDisk(*it, *centry->second.page));
      }
      lru_.erase(std::next(it).base());
      cache_.erase(centry);
      ++stats_.evictions;
      evicted = true;
      break;
    }
    if (!evicted) break;  // everything pinned; let the cache grow
  }
  return Status::OK();
}

Result<std::shared_ptr<Page>> Pager::Fetch(uint32_t page_id) {
  MutexLock lock(mutex_);
  return FetchLocked(page_id);
}

Result<std::shared_ptr<Page>> Pager::FetchLocked(uint32_t page_id) {
  if (page_id >= page_count_) {
    return Status::InvalidArgument(
        StringPrintf("page %u beyond end (%u pages)", page_id, page_count_));
  }
  ++stats_.fetches;
  auto it = cache_.find(page_id);
  if (it != cache_.end()) {
    ++stats_.hits;
    Touch(page_id, &it->second);
    return it->second.page;
  }
  ++stats_.misses;
  auto page = std::make_shared<Page>();
  VR_RETURN_NOT_OK(ReadPageFromDisk(page_id, page.get()));
  lru_.push_front(page_id);
  CacheEntry entry;
  entry.page = page;
  entry.lru_it = lru_.begin();
  cache_.emplace(page_id, std::move(entry));
  VR_RETURN_NOT_OK(EvictIfNeeded());
  return page;
}

Status Pager::MarkDirty(uint32_t page_id) {
  MutexLock lock(mutex_);
  return MarkDirtyLocked(page_id);
}

Status Pager::MarkDirtyLocked(uint32_t page_id) {
  auto it = cache_.find(page_id);
  if (it == cache_.end()) {
    VR_LOG(Warn) << "MarkDirty on non-resident page " << page_id << " of "
                 << path_ << "; write would be lost";
    return Status::NotFound(StringPrintf(
        "page %u not resident in %s", page_id, path_.c_str()));
  }
  it->second.dirty = true;
  return Status::OK();
}

Result<uint32_t> Pager::Allocate(PageType type) {
  MutexLock lock(mutex_);
  uint32_t page_id;
  if (free_head_ != kInvalidPageId) {
    page_id = free_head_;
    VR_ASSIGN_OR_RETURN(std::shared_ptr<Page> page, FetchLocked(page_id));
    free_head_ = page->next_page();
    std::memset(page->data(), 0, kPageSize);
    page->set_type(type);
    VR_RETURN_NOT_OK(MarkDirtyLocked(page_id));
  } else {
    page_id = page_count_;
    ++page_count_;
    Page fresh;
    fresh.set_type(type);
    VR_RETURN_NOT_OK(WritePageToDisk(page_id, fresh));
    // Bring it into the cache.
    auto page = std::make_shared<Page>();
    std::memcpy(page->data(), fresh.data(), kPageSize);
    lru_.push_front(page_id);
    CacheEntry entry;
    entry.page = page;
    entry.dirty = false;
    entry.lru_it = lru_.begin();
    cache_.emplace(page_id, std::move(entry));
    VR_RETURN_NOT_OK(EvictIfNeeded());
  }
  meta_dirty_ = true;
  return page_id;
}

Status Pager::Free(uint32_t page_id) {
  MutexLock lock(mutex_);
  if (page_id == 0 || page_id >= page_count_) {
    return Status::InvalidArgument("cannot free page " +
                                   std::to_string(page_id));
  }
  VR_ASSIGN_OR_RETURN(std::shared_ptr<Page> page, FetchLocked(page_id));
  std::memset(page->data(), 0, kPageSize);
  page->set_type(PageType::kFree);
  page->set_next_page(free_head_);
  free_head_ = page_id;
  VR_RETURN_NOT_OK(MarkDirtyLocked(page_id));
  meta_dirty_ = true;
  return Status::OK();
}

void Pager::set_user_root(uint32_t root) {
  MutexLock lock(mutex_);
  user_root_ = root;
  meta_dirty_ = true;
}

void Pager::set_user_counter(uint64_t v) {
  MutexLock lock(mutex_);
  user_counter_ = v;
  meta_dirty_ = true;
}

Status Pager::Flush() {
  MutexLock lock(mutex_);
  return FlushLocked();
}

Status Pager::FlushLocked() {
  for (auto& [page_id, entry] : cache_) {
    if (entry.dirty) {
      VR_RETURN_NOT_OK(WritePageToDisk(page_id, *entry.page));
      entry.dirty = false;
    }
  }
  if (meta_dirty_) {
    VR_RETURN_NOT_OK(StoreMeta());
  }
  return file_->Flush();
}

Status Pager::Sync() {
  MutexLock lock(mutex_);
  VR_RETURN_NOT_OK(FlushLocked());
  return file_->Sync();
}

}  // namespace vr
