#include "storage/pager.h"

#include <unistd.h>

#include <cstring>

#include "util/string_util.h"

namespace vr {

namespace {
constexpr uint32_t kMetaMagic = 0x56504746;  // "VPGF"
}  // namespace

Pager::~Pager() {
  if (file_ != nullptr) {
    (void)Flush();
    std::fclose(file_);
  }
}

Result<std::unique_ptr<Pager>> Pager::Open(const std::string& path,
                                           bool create_if_missing,
                                           size_t cache_pages) {
  auto pager = std::unique_ptr<Pager>(new Pager());
  pager->path_ = path;
  pager->cache_capacity_ = std::max<size_t>(8, cache_pages);

  pager->file_ = std::fopen(path.c_str(), "r+b");
  if (pager->file_ == nullptr) {
    if (!create_if_missing) {
      return Status::IOError("cannot open page file: " + path);
    }
    pager->file_ = std::fopen(path.c_str(), "w+b");
    if (pager->file_ == nullptr) {
      return Status::IOError("cannot create page file: " + path);
    }
    pager->meta_dirty_ = true;
    VR_RETURN_NOT_OK(pager->StoreMeta());
    // A fresh file must be recoverable immediately: push the meta page
    // through to the kernel before anyone can journal against it.
    if (std::fflush(pager->file_) != 0) {
      return Status::IOError("flush of fresh page file failed");
    }
  } else {
    VR_RETURN_NOT_OK(pager->LoadMeta());
  }
  return pager;
}

Status Pager::LoadMeta() {
  Page meta;
  VR_RETURN_NOT_OK(ReadPageFromDisk(0, &meta));
  if (meta.ReadAt<uint32_t>(8) != kMetaMagic) {
    return Status::Corruption("bad page-file magic: " + path_);
  }
  page_count_ = meta.ReadAt<uint32_t>(12);
  free_head_ = meta.ReadAt<uint32_t>(16);
  user_root_ = meta.ReadAt<uint32_t>(20);
  user_counter_ = meta.ReadAt<uint64_t>(24);
  if (page_count_ == 0) return Status::Corruption("zero page count");
  return Status::OK();
}

Status Pager::StoreMeta() {
  Page meta;
  meta.set_type(PageType::kMeta);
  meta.WriteAt<uint32_t>(8, kMetaMagic);
  meta.WriteAt<uint32_t>(12, page_count_);
  meta.WriteAt<uint32_t>(16, free_head_);
  meta.WriteAt<uint32_t>(20, user_root_);
  meta.WriteAt<uint64_t>(24, user_counter_);
  VR_RETURN_NOT_OK(WritePageToDisk(0, meta));
  meta_dirty_ = false;
  return Status::OK();
}

Status Pager::ReadPageFromDisk(uint32_t page_id, Page* out) {
  if (std::fseek(file_, static_cast<long>(page_id) * kPageSize, SEEK_SET) !=
      0) {
    return Status::IOError("seek failed");
  }
  const size_t n = std::fread(out->data(), 1, kPageSize, file_);
  if (n != kPageSize) {
    return Status::Corruption(StringPrintf(
        "short page read (page %u) from %s", page_id, path_.c_str()));
  }
  return Status::OK();
}

Status Pager::WritePageToDisk(uint32_t page_id, const Page& page) {
  if (std::fseek(file_, static_cast<long>(page_id) * kPageSize, SEEK_SET) !=
      0) {
    return Status::IOError("seek failed");
  }
  if (std::fwrite(page.data(), 1, kPageSize, file_) != kPageSize) {
    return Status::IOError("short page write to " + path_);
  }
  return Status::OK();
}

void Pager::Touch(uint32_t page_id, CacheEntry* entry) {
  lru_.erase(entry->lru_it);
  lru_.push_front(page_id);
  entry->lru_it = lru_.begin();
}

Status Pager::EvictIfNeeded() {
  while (cache_.size() > cache_capacity_) {
    // Evict from the LRU tail, skipping pages still referenced outside.
    bool evicted = false;
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      auto centry = cache_.find(*it);
      if (centry == cache_.end()) continue;
      if (centry->second.page.use_count() > 1) continue;  // pinned
      if (centry->second.dirty) {
        VR_RETURN_NOT_OK(WritePageToDisk(*it, *centry->second.page));
      }
      lru_.erase(std::next(it).base());
      cache_.erase(centry);
      evicted = true;
      break;
    }
    if (!evicted) break;  // everything pinned; let the cache grow
  }
  return Status::OK();
}

Result<std::shared_ptr<Page>> Pager::Fetch(uint32_t page_id) {
  if (page_id >= page_count_) {
    return Status::InvalidArgument(
        StringPrintf("page %u beyond end (%u pages)", page_id, page_count_));
  }
  auto it = cache_.find(page_id);
  if (it != cache_.end()) {
    ++cache_hits_;
    Touch(page_id, &it->second);
    return it->second.page;
  }
  ++cache_misses_;
  auto page = std::make_shared<Page>();
  VR_RETURN_NOT_OK(ReadPageFromDisk(page_id, page.get()));
  lru_.push_front(page_id);
  CacheEntry entry;
  entry.page = page;
  entry.lru_it = lru_.begin();
  cache_.emplace(page_id, std::move(entry));
  VR_RETURN_NOT_OK(EvictIfNeeded());
  return page;
}

void Pager::MarkDirty(uint32_t page_id) {
  auto it = cache_.find(page_id);
  if (it != cache_.end()) it->second.dirty = true;
}

Result<uint32_t> Pager::Allocate(PageType type) {
  uint32_t page_id;
  if (free_head_ != kInvalidPageId) {
    page_id = free_head_;
    VR_ASSIGN_OR_RETURN(std::shared_ptr<Page> page, Fetch(page_id));
    free_head_ = page->next_page();
    std::memset(page->data(), 0, kPageSize);
    page->set_type(type);
    MarkDirty(page_id);
  } else {
    page_id = page_count_;
    ++page_count_;
    Page fresh;
    fresh.set_type(type);
    VR_RETURN_NOT_OK(WritePageToDisk(page_id, fresh));
    // Bring it into the cache.
    auto page = std::make_shared<Page>();
    std::memcpy(page->data(), fresh.data(), kPageSize);
    lru_.push_front(page_id);
    CacheEntry entry;
    entry.page = page;
    entry.dirty = false;
    entry.lru_it = lru_.begin();
    cache_.emplace(page_id, std::move(entry));
    VR_RETURN_NOT_OK(EvictIfNeeded());
  }
  meta_dirty_ = true;
  return page_id;
}

Status Pager::Free(uint32_t page_id) {
  if (page_id == 0 || page_id >= page_count_) {
    return Status::InvalidArgument("cannot free page " +
                                   std::to_string(page_id));
  }
  VR_ASSIGN_OR_RETURN(std::shared_ptr<Page> page, Fetch(page_id));
  std::memset(page->data(), 0, kPageSize);
  page->set_type(PageType::kFree);
  page->set_next_page(free_head_);
  free_head_ = page_id;
  MarkDirty(page_id);
  meta_dirty_ = true;
  return Status::OK();
}

void Pager::set_user_root(uint32_t root) {
  user_root_ = root;
  meta_dirty_ = true;
}

void Pager::set_user_counter(uint64_t v) {
  user_counter_ = v;
  meta_dirty_ = true;
}

Status Pager::Flush() {
  for (auto& [page_id, entry] : cache_) {
    if (entry.dirty) {
      VR_RETURN_NOT_OK(WritePageToDisk(page_id, *entry.page));
      entry.dirty = false;
    }
  }
  if (meta_dirty_) {
    VR_RETURN_NOT_OK(StoreMeta());
  }
  if (std::fflush(file_) != 0) return Status::IOError("fflush failed");
  return Status::OK();
}

Status Pager::Sync() {
  VR_RETURN_NOT_OK(Flush());
  if (fsync(fileno(file_)) != 0) return Status::IOError("fsync failed");
  return Status::OK();
}

}  // namespace vr
