#include "storage/wal.h"

#include <cstring>

#include "util/hash.h"
#include "util/logging.h"

namespace vr {

Wal::~Wal() = default;

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path, Env* env) {
  if (env == nullptr) env = Env::Default();
  auto wal = std::unique_ptr<Wal>(new Wal());
  wal->path_ = path;
  wal->env_ = env;
  VR_ASSIGN_OR_RETURN(wal->file_,
                      env->Open(path, Env::OpenMode::kCreateIfMissing));
  return wal;
}

namespace {

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}
void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}
void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

Status Wal::Append(WalOp op, const std::string& table, int64_t pk,
                   const std::vector<uint8_t>& payload) {
  if (table.size() > UINT16_MAX) {
    return Status::InvalidArgument("table name too long for journal");
  }
  std::vector<uint8_t> record;
  record.reserve(payload.size() + table.size() + 32);
  record.push_back(static_cast<uint8_t>(op));
  PutU16(&record, static_cast<uint16_t>(table.size()));
  record.insert(record.end(), table.begin(), table.end());
  PutU64(&record, static_cast<uint64_t>(pk));
  PutU32(&record, static_cast<uint32_t>(payload.size()));
  record.insert(record.end(), payload.begin(), payload.end());
  PutU64(&record, Fnv1a64(record.data(), record.size()));
  return file_->Append(record.data(), record.size());
}

Status Wal::AppendInsert(const std::string& table, int64_t pk,
                         const std::vector<uint8_t>& payload) {
  return Append(WalOp::kInsert, table, pk, payload);
}

Status Wal::AppendDelete(const std::string& table, int64_t pk) {
  return Append(WalOp::kDelete, table, pk, {});
}

Status Wal::Sync() { return file_->Sync(); }

Status Wal::Replay(const std::function<Status(const WalRecord&)>& cb) {
  // Make in-process appends visible to the fresh read below.
  VR_RETURN_NOT_OK(file_->Flush());
  Result<std::string> contents = env_->ReadFileToString(path_);
  if (!contents.ok()) return Status::OK();  // no journal yet
  const uint8_t* data =
      reinterpret_cast<const uint8_t*>(contents.value().data());
  const size_t size = contents.value().size();
  size_t pos = 0;
  size_t replayed = 0;
  while (true) {
    const size_t start = pos;
    // Fixed-size prefix: op(1) + name_len(2).
    if (size - pos < 3) break;
    const uint8_t op_raw = data[pos];
    const uint16_t name_len =
        static_cast<uint16_t>(data[pos + 1] | (data[pos + 2] << 8));
    pos += 3;
    if (size - pos < static_cast<size_t>(name_len) + 12) break;
    std::string table(reinterpret_cast<const char*>(data + pos), name_len);
    pos += name_len;
    const uint64_t pk_bits = GetU64(data + pos);
    pos += 8;
    uint32_t payload_len = 0;
    for (int i = 0; i < 4; ++i) {
      payload_len |= static_cast<uint32_t>(data[pos + i]) << (8 * i);
    }
    pos += 4;
    if (size - pos < static_cast<size_t>(payload_len) + 8) break;
    const uint8_t* payload_begin = data + pos;
    pos += payload_len;
    const uint64_t expect = GetU64(data + pos);
    pos += 8;

    if (Fnv1a64(data + start, pos - start - 8) != expect) {
      VR_LOG(Warn) << "journal: checksum mismatch after " << replayed
                   << " records; discarding tail";
      break;
    }
    if (op_raw != static_cast<uint8_t>(WalOp::kInsert) &&
        op_raw != static_cast<uint8_t>(WalOp::kDelete)) {
      VR_LOG(Warn) << "journal: unknown op " << int{op_raw}
                   << "; discarding tail";
      break;
    }
    WalRecord record;
    record.op = static_cast<WalOp>(op_raw);
    record.table = std::move(table);
    record.pk = static_cast<int64_t>(pk_bits);
    record.payload.assign(payload_begin, payload_begin + payload_len);
    VR_RETURN_NOT_OK(cb(record));
    ++replayed;
  }
  return Status::OK();
}

Status Wal::Truncate() {
  VR_RETURN_NOT_OK(file_->Truncate(0));
  return Sync();
}

Result<uint64_t> Wal::SizeBytes() const { return file_->Size(); }

}  // namespace vr
