#include "storage/wal.h"

#include <unistd.h>

#include <cstring>

#include "util/hash.h"
#include "util/logging.h"

namespace vr {

Wal::~Wal() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path) {
  auto wal = std::unique_ptr<Wal>(new Wal());
  wal->path_ = path;
  wal->file_ = std::fopen(path.c_str(), "a+b");
  if (wal->file_ == nullptr) {
    return Status::IOError("cannot open journal: " + path);
  }
  return wal;
}

namespace {

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}
void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}
void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

}  // namespace

Status Wal::Append(WalOp op, const std::string& table, int64_t pk,
                   const std::vector<uint8_t>& payload) {
  if (table.size() > UINT16_MAX) {
    return Status::InvalidArgument("table name too long for journal");
  }
  std::vector<uint8_t> record;
  record.reserve(payload.size() + table.size() + 32);
  record.push_back(static_cast<uint8_t>(op));
  PutU16(&record, static_cast<uint16_t>(table.size()));
  record.insert(record.end(), table.begin(), table.end());
  PutU64(&record, static_cast<uint64_t>(pk));
  PutU32(&record, static_cast<uint32_t>(payload.size()));
  record.insert(record.end(), payload.begin(), payload.end());
  PutU64(&record, Fnv1a64(record.data(), record.size()));
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    return Status::IOError("short journal write");
  }
  return Status::OK();
}

Status Wal::AppendInsert(const std::string& table, int64_t pk,
                         const std::vector<uint8_t>& payload) {
  return Append(WalOp::kInsert, table, pk, payload);
}

Status Wal::AppendDelete(const std::string& table, int64_t pk) {
  return Append(WalOp::kDelete, table, pk, {});
}

Status Wal::Sync() {
  if (std::fflush(file_) != 0) return Status::IOError("journal flush failed");
  if (fsync(fileno(file_)) != 0) return Status::IOError("journal fsync failed");
  return Status::OK();
}

Status Wal::Replay(const std::function<Status(const WalRecord&)>& cb) {
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return Status::OK();  // no journal yet
  auto read_exact = [&](void* dst, size_t n) {
    return std::fread(dst, 1, n, f) == n;
  };
  size_t replayed = 0;
  while (true) {
    std::vector<uint8_t> head;
    uint8_t op_raw = 0;
    if (!read_exact(&op_raw, 1)) break;
    uint8_t len_raw[2];
    if (!read_exact(len_raw, 2)) break;
    const uint16_t name_len =
        static_cast<uint16_t>(len_raw[0] | (len_raw[1] << 8));
    std::string table(name_len, '\0');
    if (name_len > 0 && !read_exact(table.data(), name_len)) break;
    uint8_t pk_raw[8];
    if (!read_exact(pk_raw, 8)) break;
    uint8_t plen_raw[4];
    if (!read_exact(plen_raw, 4)) break;
    uint32_t payload_len = 0;
    for (int i = 0; i < 4; ++i) {
      payload_len |= static_cast<uint32_t>(plen_raw[i]) << (8 * i);
    }
    std::vector<uint8_t> payload(payload_len);
    if (payload_len > 0 && !read_exact(payload.data(), payload_len)) break;
    uint8_t sum_raw[8];
    if (!read_exact(sum_raw, 8)) break;

    // Recompute the checksum over the serialized prefix.
    std::vector<uint8_t> prefix;
    prefix.reserve(15 + name_len + payload_len);
    prefix.push_back(op_raw);
    prefix.push_back(len_raw[0]);
    prefix.push_back(len_raw[1]);
    prefix.insert(prefix.end(), table.begin(), table.end());
    prefix.insert(prefix.end(), pk_raw, pk_raw + 8);
    prefix.insert(prefix.end(), plen_raw, plen_raw + 4);
    prefix.insert(prefix.end(), payload.begin(), payload.end());
    uint64_t expect = 0;
    for (int i = 0; i < 8; ++i) {
      expect |= static_cast<uint64_t>(sum_raw[i]) << (8 * i);
    }
    if (Fnv1a64(prefix.data(), prefix.size()) != expect) {
      VR_LOG(Warn) << "journal: checksum mismatch after " << replayed
                   << " records; discarding tail";
      break;
    }
    if (op_raw != static_cast<uint8_t>(WalOp::kInsert) &&
        op_raw != static_cast<uint8_t>(WalOp::kDelete)) {
      VR_LOG(Warn) << "journal: unknown op " << int{op_raw}
                   << "; discarding tail";
      break;
    }
    WalRecord record;
    record.op = static_cast<WalOp>(op_raw);
    record.table = std::move(table);
    uint64_t pk_bits = 0;
    for (int i = 0; i < 8; ++i) {
      pk_bits |= static_cast<uint64_t>(pk_raw[i]) << (8 * i);
    }
    record.pk = static_cast<int64_t>(pk_bits);
    record.payload = std::move(payload);
    const Status st = cb(record);
    if (!st.ok()) {
      std::fclose(f);
      return st;
    }
    ++replayed;
  }
  std::fclose(f);
  return Status::OK();
}

Status Wal::Truncate() {
  if (file_ != nullptr) std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "w+b");
  if (file_ == nullptr) {
    return Status::IOError("cannot truncate journal: " + path_);
  }
  return Sync();
}

Result<uint64_t> Wal::SizeBytes() const {
  if (std::fflush(file_) != 0) return Status::IOError("flush failed");
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return Status::IOError("seek failed");
  }
  return static_cast<uint64_t>(std::ftell(file_));
}

}  // namespace vr
