#include "storage/database.h"

#include <sys/stat.h>
#include <sys/types.h>

#include "util/logging.h"

namespace vr {

namespace {

Status EnsureDirectory(const std::string& dir, bool create) {
  struct stat st {};
  if (stat(dir.c_str(), &st) == 0) {
    if (!S_ISDIR(st.st_mode)) {
      return Status::InvalidArgument(dir + " exists and is not a directory");
    }
    return Status::OK();
  }
  if (!create) return Status::NotFound("no such database: " + dir);
  if (mkdir(dir.c_str(), 0755) != 0) {
    return Status::IOError("cannot create database directory: " + dir);
  }
  return Status::OK();
}

}  // namespace

Database::~Database() {
  if (!closed_) {
    const Status st = Close();
    if (!st.ok()) {
      VR_LOG(Error) << "error closing database " << dir_ << ": "
                    << st.ToString();
    }
  }
}

Result<std::unique_ptr<Database>> Database::Open(const std::string& dir,
                                                 bool create_if_missing) {
  VR_RETURN_NOT_OK(EnsureDirectory(dir, create_if_missing));
  auto db = std::unique_ptr<Database>(new Database(dir));
  VR_ASSIGN_OR_RETURN(db->catalog_, Catalog::Load(dir + "/catalog.vcat"));
  VR_ASSIGN_OR_RETURN(db->wal_, Wal::Open(dir + "/journal.wal"));

  for (const Catalog::TableDef& def : db->catalog_.tables()) {
    VR_ASSIGN_OR_RETURN(std::unique_ptr<Table> table,
                        Table::Open(dir, def.name, def.schema, true));
    for (const IndexSpec& spec : def.indexes) {
      VR_RETURN_NOT_OK(table->CreateIndex(spec));
    }
    db->tables_.emplace(def.name, std::move(table));
  }
  VR_RETURN_NOT_OK(db->ReplayJournal());
  return db;
}

Status Database::ReplayJournal() {
  size_t applied = 0;
  VR_RETURN_NOT_OK(wal_->Replay([&](const WalRecord& record) -> Status {
    auto it = tables_.find(record.table);
    if (it == tables_.end()) {
      // A journal record for a table the catalog does not know means the
      // catalog write raced the crash; surface it rather than guess.
      return Status::Corruption("journal references unknown table " +
                                record.table);
    }
    Table* table = it->second.get();
    if (record.op == WalOp::kInsert) {
      VR_ASSIGN_OR_RETURN(DecodedRow decoded,
                          DeserializeRow(table->schema(), record.payload));
      // Idempotent: a row already present was applied before the crash.
      if (!table->Exists(record.pk)) {
        VR_RETURN_NOT_OK(table->Insert(decoded.values).status());
        ++applied;
      }
    } else {
      const Status st = table->Delete(record.pk);
      if (st.ok()) {
        ++applied;
      } else if (!st.IsNotFound()) {
        return st;
      }
    }
    return Status::OK();
  }));
  if (applied > 0) {
    VR_LOG(Info) << "journal replay applied " << applied << " records";
    return Checkpoint();
  }
  return Status::OK();
}

Result<Table*> Database::CreateTable(const std::string& name,
                                     const Schema& schema) {
  VR_RETURN_NOT_OK(catalog_.AddTable(name, schema));
  VR_ASSIGN_OR_RETURN(std::unique_ptr<Table> table,
                      Table::Open(dir_, name, schema, true));
  Table* raw = table.get();
  tables_.emplace(name, std::move(table));
  VR_RETURN_NOT_OK(catalog_.Save(dir_ + "/catalog.vcat"));
  return raw;
}

Result<Table*> Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  return it->second.get();
}

Status Database::CreateIndex(const std::string& table, const IndexSpec& spec) {
  VR_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  VR_RETURN_NOT_OK(t->CreateIndex(spec));
  VR_RETURN_NOT_OK(catalog_.AddIndex(table, spec));
  return catalog_.Save(dir_ + "/catalog.vcat");
}

Result<int64_t> Database::Insert(const std::string& table, const Row& row) {
  VR_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  VR_RETURN_NOT_OK(t->schema().ValidateRow(row));
  const int64_t pk = row[t->schema().primary_key_index()].AsInt64();
  if (t->Exists(pk)) {
    return Status::AlreadyExists(table + ": duplicate pk " +
                                 std::to_string(pk));
  }
  // Journal first (blobs inline), then apply.
  VR_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                      SerializeRow(t->schema(), row));
  VR_RETURN_NOT_OK(wal_->AppendInsert(table, pk, payload));
  VR_RETURN_NOT_OK(wal_->Sync());
  return t->Insert(row);
}

Status Database::Delete(const std::string& table, int64_t pk) {
  VR_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  if (!t->Exists(pk)) {
    return Status::NotFound(table + ": no pk " + std::to_string(pk));
  }
  VR_RETURN_NOT_OK(wal_->AppendDelete(table, pk));
  VR_RETURN_NOT_OK(wal_->Sync());
  return t->Delete(pk);
}

Status Database::Update(const std::string& table, const Row& row) {
  VR_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  VR_RETURN_NOT_OK(t->schema().ValidateRow(row));
  const int64_t pk = row[t->schema().primary_key_index()].AsInt64();
  VR_RETURN_NOT_OK(Delete(table, pk));
  return Insert(table, row).status();
}

Status Database::Checkpoint() {
  // A partially constructed Database (Open failed mid-way) has no
  // journal; there is nothing to checkpoint.
  if (wal_ == nullptr) return Status::OK();
  for (auto& [name, table] : tables_) {
    VR_RETURN_NOT_OK(table->Sync());
  }
  return wal_->Truncate();
}

Status Database::Close() {
  if (closed_) return Status::OK();
  VR_RETURN_NOT_OK(Checkpoint());
  closed_ = true;
  return Status::OK();
}

}  // namespace vr
