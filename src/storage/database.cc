#include "storage/database.h"

#include <algorithm>

#include "util/logging.h"

namespace vr {

Database::~Database() {
  if (!closed_) {
    const Status st = Close();
    if (!st.ok()) {
      VR_LOG(Error) << "error closing database " << dir_ << ": "
                    << st.ToString();
    }
  }
}

Result<std::unique_ptr<Database>> Database::Open(const std::string& dir,
                                                 bool create_if_missing) {
  DatabaseOptions options;
  options.create_if_missing = create_if_missing;
  return Open(dir, options);
}

Result<std::unique_ptr<Database>> Database::Open(
    const std::string& dir, const DatabaseOptions& options) {
  Env* env = options.env != nullptr ? options.env : Env::Default();
  if (!env->FileExists(dir)) {
    if (!options.create_if_missing) {
      return Status::NotFound("no such database: " + dir);
    }
    VR_RETURN_NOT_OK(env->CreateDirIfMissing(dir));
  }
  auto db = std::unique_ptr<Database>(new Database(dir));
  db->env_ = env;
  db->paranoid_ = options.paranoid;
  VR_ASSIGN_OR_RETURN(db->catalog_, Catalog::Load(dir + "/catalog.vcat", env));
  VR_ASSIGN_OR_RETURN(db->wal_, Wal::Open(dir + "/journal.wal", env));

  for (const Catalog::TableDef& def : db->catalog_.tables()) {
    Result<std::unique_ptr<Table>> table =
        Table::Open(dir, def.name, def.schema, true, env);
    Status verdict = table.status();
    if (verdict.ok()) {
      for (const IndexSpec& spec : def.indexes) {
        verdict = table.value()->CreateIndex(spec);
        if (!verdict.ok()) break;
      }
    }
    // A degraded open proactively verifies every page so damage shows
    // up here, as a quarantined table, instead of later as a failing
    // query; a paranoid open leaves verification to Fetch.
    if (verdict.ok() && !options.paranoid) {
      verdict = table.value()->VerifyIntegrity();
    }
    if (!verdict.ok()) {
      if (options.paranoid) return verdict;
      VR_LOG(Warn) << "quarantining table " << def.name << ": "
                   << verdict.ToString();
      db->damage_.push_back(TableDamage{def.name, verdict});
      continue;
    }
    db->tables_.emplace(def.name, std::move(table).value());
  }
  VR_RETURN_NOT_OK(db->ReplayJournal());
  return db;
}

bool Database::IsQuarantined(const std::string& table) const {
  for (const TableDamage& d : damage_) {
    if (d.table == table) return true;
  }
  return false;
}

Status Database::ReplayJournal() {
  VR_ASSIGN_OR_RETURN(uint64_t journal_bytes, wal_->SizeBytes());
  if (journal_bytes == 0) return Status::OK();

  // The journal is non-empty, so the last shutdown was not a clean
  // checkpoint: table files may hold partially applied mutations.
  // First drop heap records the pk index does not vouch for (heap
  // synced before the index), then replay.
  size_t scrubbed = 0;
  for (auto& [name, table] : tables_) {
    VR_ASSIGN_OR_RETURN(uint64_t n, table->ScrubOrphans());
    scrubbed += n;
  }

  size_t applied = 0;
  VR_RETURN_NOT_OK(wal_->Replay([&](const WalRecord& record) -> Status {
    auto it = tables_.find(record.table);
    if (it == tables_.end()) {
      if (IsQuarantined(record.table)) {
        // The table is damaged beyond this journal's help; keep the
        // record (Checkpoint will not truncate) and move on.
        VR_LOG(Warn) << "journal: skipping record for quarantined table "
                     << record.table;
        return Status::OK();
      }
      // A journal record for a table the catalog does not know means the
      // catalog write raced the crash; surface it rather than guess.
      return Status::Corruption("journal references unknown table " +
                                record.table);
    }
    Table* table = it->second.get();
    if (record.op == WalOp::kInsert) {
      if (table->Exists(record.pk)) {
        // Present is not enough: the crash may have landed after the
        // pk-index sync but before the heap or blob sync, leaving a
        // row that reads back wrong. Trust it only if it matches the
        // journaled bytes exactly.
        if (table->MatchesPayload(record.pk, record.payload)) {
          return Status::OK();
        }
        VR_LOG(Warn) << "journal: row " << record.pk << " of "
                     << record.table
                     << " does not match its journal payload; re-applying";
        VR_RETURN_NOT_OK(table->ForceRemove(record.pk));
      }
      VR_ASSIGN_OR_RETURN(DecodedRow decoded,
                          DeserializeRow(table->schema(), record.payload));
      VR_RETURN_NOT_OK(table->Insert(decoded.values).status());
      ++applied;
    } else {
      Status st = table->Delete(record.pk);
      if (st.ok()) {
        ++applied;
      } else if (!st.IsNotFound()) {
        // The row is half-gone (e.g. its blob chain was already freed
        // before the crash); finish the job tolerantly.
        VR_LOG(Warn) << "journal: delete of " << record.pk << " from "
                     << record.table << " failed (" << st.ToString()
                     << "); force-removing";
        VR_RETURN_NOT_OK(table->ForceRemove(record.pk));
        ++applied;
      }
    }
    return Status::OK();
  }));
  if (applied > 0 || scrubbed > 0) {
    VR_LOG(Info) << "journal replay applied " << applied << " records";
    return Checkpoint();
  }
  return Status::OK();
}

Result<Table*> Database::CreateTable(const std::string& name,
                                     const Schema& schema) {
  VR_RETURN_NOT_OK(catalog_.AddTable(name, schema));
  VR_ASSIGN_OR_RETURN(std::unique_ptr<Table> table,
                      Table::Open(dir_, name, schema, true, env_));
  Table* raw = table.get();
  tables_.emplace(name, std::move(table));
  VR_RETURN_NOT_OK(catalog_.Save(dir_ + "/catalog.vcat", env_));
  return raw;
}

Result<Table*> Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    for (const TableDamage& d : damage_) {
      if (d.table == name) {
        return Status::Corruption("table " + name + " is quarantined: " +
                                  d.reason.ToString());
      }
    }
    return Status::NotFound("no such table: " + name);
  }
  return it->second.get();
}

Status Database::CreateIndex(const std::string& table, const IndexSpec& spec) {
  VR_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  VR_RETURN_NOT_OK(t->CreateIndex(spec));
  VR_RETURN_NOT_OK(catalog_.AddIndex(table, spec));
  return catalog_.Save(dir_ + "/catalog.vcat", env_);
}

Result<int64_t> Database::Insert(const std::string& table, const Row& row) {
  VR_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  VR_RETURN_NOT_OK(t->schema().ValidateRow(row));
  const int64_t pk = row[t->schema().primary_key_index()].AsInt64();
  if (t->Exists(pk)) {
    return Status::AlreadyExists(table + ": duplicate pk " +
                                 std::to_string(pk));
  }
  // Journal first (blobs inline), then apply.
  VR_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                      SerializeRow(t->schema(), row));
  VR_RETURN_NOT_OK(wal_->AppendInsert(table, pk, payload));
  VR_RETURN_NOT_OK(wal_->Sync());
  return t->Insert(row);
}

Status Database::InsertBatch(const std::string& table,
                             const std::vector<Row>& rows) {
  if (rows.empty()) return Status::OK();
  VR_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  const size_t pk_index = t->schema().primary_key_index();

  // Validate and serialize everything before journaling anything, so a
  // bad row cannot leave a half-journaled batch.
  std::vector<int64_t> pks;
  std::vector<std::vector<uint8_t>> payloads;
  pks.reserve(rows.size());
  payloads.reserve(rows.size());
  for (const Row& row : rows) {
    VR_RETURN_NOT_OK(t->schema().ValidateRow(row));
    const int64_t pk = row[pk_index].AsInt64();
    if (t->Exists(pk) ||
        std::find(pks.begin(), pks.end(), pk) != pks.end()) {
      return Status::AlreadyExists(table + ": duplicate pk " +
                                   std::to_string(pk));
    }
    VR_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                        SerializeRow(t->schema(), row));
    pks.push_back(pk);
    payloads.push_back(std::move(payload));
  }

  // Journal the whole batch, then one sync covers every row.
  for (size_t i = 0; i < rows.size(); ++i) {
    VR_RETURN_NOT_OK(wal_->AppendInsert(table, pks[i], payloads[i]));
  }
  VR_RETURN_NOT_OK(wal_->Sync());

  for (const Row& row : rows) {
    VR_RETURN_NOT_OK(t->Insert(row).status());
  }
  return Status::OK();
}

Status Database::Delete(const std::string& table, int64_t pk) {
  VR_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  if (!t->Exists(pk)) {
    return Status::NotFound(table + ": no pk " + std::to_string(pk));
  }
  VR_RETURN_NOT_OK(wal_->AppendDelete(table, pk));
  VR_RETURN_NOT_OK(wal_->Sync());
  return t->Delete(pk);
}

Status Database::Update(const std::string& table, const Row& row) {
  VR_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  VR_RETURN_NOT_OK(t->schema().ValidateRow(row));
  const int64_t pk = row[t->schema().primary_key_index()].AsInt64();
  VR_RETURN_NOT_OK(Delete(table, pk));
  return Insert(table, row).status();
}

PagerStats Database::GetPagerStats() const {
  PagerStats total;
  for (const auto& [name, table] : tables_) {
    if (table != nullptr) total += table->GetPagerStats();
  }
  return total;
}

Status Database::Checkpoint() {
  // A partially constructed Database (Open failed mid-way) has no
  // journal; there is nothing to checkpoint.
  if (wal_ == nullptr) return Status::OK();
  for (auto& [name, table] : tables_) {
    VR_RETURN_NOT_OK(table->Sync());
  }
  if (!damage_.empty()) {
    // Quarantined tables could not apply their journal records;
    // truncating would erase the only surviving copy of those rows.
    VR_LOG(Warn) << "checkpoint: keeping journal (" << damage_.size()
                 << " quarantined table(s))";
    return Status::OK();
  }
  return wal_->Truncate();
}

Status Database::Close() {
  if (closed_) return Status::OK();
  VR_RETURN_NOT_OK(Checkpoint());
  closed_ = true;
  return Status::OK();
}

}  // namespace vr
