#include "storage/schema.h"

#include "util/string_util.h"

namespace vr {

Result<Schema> Schema::Create(std::vector<Column> columns,
                              const std::string& primary_key) {
  if (columns.empty()) {
    return Status::InvalidArgument("schema needs at least one column");
  }
  Schema s;
  s.columns_ = std::move(columns);
  bool found = false;
  for (size_t i = 0; i < s.columns_.size(); ++i) {
    for (size_t j = i + 1; j < s.columns_.size(); ++j) {
      if (s.columns_[i].name == s.columns_[j].name) {
        return Status::InvalidArgument("duplicate column name: " +
                                       s.columns_[i].name);
      }
    }
    if (s.columns_[i].name == primary_key) {
      if (s.columns_[i].type != ColumnType::kInt64) {
        return Status::InvalidArgument("primary key must be INT64");
      }
      s.pk_index_ = i;
      s.columns_[i].nullable = false;
      found = true;
    }
  }
  if (!found) {
    return Status::InvalidArgument("primary key column not found: " +
                                   primary_key);
  }
  return s;
}

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no such column: " + name);
}

Status Schema::ValidateRow(const std::vector<Value>& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        StringPrintf("row has %zu values, schema has %zu columns", row.size(),
                     columns_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null() && !columns_[i].nullable) {
      return Status::InvalidArgument("NULL in non-nullable column " +
                                     columns_[i].name);
    }
    if (!row[i].Matches(columns_[i].type)) {
      return Status::InvalidArgument(
          StringPrintf("value %s does not match column %s (%s)",
                       row[i].ToString().c_str(), columns_[i].name.c_str(),
                       ColumnTypeName(columns_[i].type)));
    }
  }
  return Status::OK();
}

std::string Schema::Serialize() const {
  // name:TYPE:nullable,... |pk_index
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (const Column& c : columns_) {
    parts.push_back(c.name + ":" + ColumnTypeName(c.type) + ":" +
                    (c.nullable ? "1" : "0"));
  }
  return Join(parts, ",") + "|" + std::to_string(pk_index_);
}

Result<Schema> Schema::Parse(const std::string& text) {
  const std::vector<std::string> halves = Split(text, '|');
  if (halves.size() != 2) return Status::Corruption("bad schema text");
  VR_ASSIGN_OR_RETURN(int64_t pk, ParseInt64(halves[1]));
  std::vector<Column> columns;
  for (const std::string& part : Split(halves[0], ',', /*skip_empty=*/true)) {
    const std::vector<std::string> fields = Split(part, ':');
    if (fields.size() != 3) return Status::Corruption("bad column text");
    Column c;
    c.name = fields[0];
    VR_ASSIGN_OR_RETURN(c.type, ColumnTypeFromName(fields[1]));
    c.nullable = fields[2] == "1";
    columns.push_back(std::move(c));
  }
  if (pk < 0 || static_cast<size_t>(pk) >= columns.size()) {
    return Status::Corruption("bad schema pk index");
  }
  const std::string pk_name = columns[static_cast<size_t>(pk)].name;
  return Schema::Create(std::move(columns), pk_name);
}

}  // namespace vr
