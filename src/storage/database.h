/// \file database.h
/// \brief The embedded database: catalog + tables + journal + recovery.
///
/// A database is a directory. Mutations routed through the Database are
/// journaled (journal-first, fsync, then apply), so a crash between
/// commit and page flush is recovered by idempotent replay on the next
/// Open. Checkpoint() flushes every table and truncates the journal.

#pragma once

#include <map>
#include <memory>
#include <string>

#include "storage/catalog.h"
#include "storage/table.h"
#include "storage/wal.h"

namespace vr {

/// \brief Directory-backed database with WAL-based crash recovery.
class Database {
 public:
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Opens a database directory (creating it when \p create_if_missing),
  /// loads the catalog, opens every table and replays the journal.
  static Result<std::unique_ptr<Database>> Open(const std::string& dir,
                                                bool create_if_missing);

  /// Creates a table and persists the catalog.
  Result<Table*> CreateTable(const std::string& name, const Schema& schema);

  /// Looks up an open table; NotFound when absent.
  Result<Table*> GetTable(const std::string& name);

  /// Creates a secondary index and persists the catalog.
  Status CreateIndex(const std::string& table, const IndexSpec& spec);

  /// Journaled insert. AlreadyExists on pk collision.
  Result<int64_t> Insert(const std::string& table, const Row& row);

  /// Journaled delete by primary key.
  Status Delete(const std::string& table, int64_t pk);

  /// Journaled update (delete + insert under the same pk).
  Status Update(const std::string& table, const Row& row);

  /// Flushes all tables and truncates the journal.
  Status Checkpoint();

  /// Checkpoint + close. Called by the destructor if needed.
  Status Close();

  const std::string& dir() const { return dir_; }

  /// Bytes currently pending in the journal.
  Result<uint64_t> JournalBytes() const { return wal_->SizeBytes(); }

 private:
  explicit Database(std::string dir) : dir_(std::move(dir)) {}

  Status ReplayJournal();

  std::string dir_;
  Catalog catalog_;
  std::unique_ptr<Wal> wal_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  bool closed_ = false;
};

}  // namespace vr
