/// \file database.h
/// \brief The embedded database: catalog + tables + journal + recovery.
///
/// A database is a directory. Mutations routed through the Database are
/// journaled (journal-first, fsync, then apply), so a crash between
/// commit and page flush is recovered by replay on the next Open.
/// Replay is hardened against partially applied mutations: orphan heap
/// records (heap synced, pk index not) are scrubbed, and a journaled
/// row whose on-disk bytes do not match the journal payload is removed
/// and re-applied. Checkpoint() flushes every table and truncates the
/// journal.
///
/// With DatabaseOptions::paranoid = false, Open verifies every page of
/// every table and quarantines damaged tables instead of failing: the
/// database serves the healthy majority, quarantined tables report
/// Corruption from GetTable, and DamageReport() lists the casualties.
/// Journal records for quarantined tables are preserved (the journal
/// is not truncated) so a repaired table can still be recovered.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/catalog.h"
#include "storage/table.h"
#include "storage/wal.h"
#include "util/env.h"

namespace vr {

/// \brief Knobs for Database::Open.
struct DatabaseOptions {
  bool create_if_missing = false;
  /// When true (default), any table that fails to open or verify fails
  /// the whole Open. When false, such tables are quarantined and the
  /// rest of the database stays usable.
  bool paranoid = true;
  /// All filesystem I/O goes through this Env (Env::Default() if null).
  Env* env = nullptr;
};

/// \brief One table Open quarantined instead of serving.
struct TableDamage {
  std::string table;
  Status reason;
};

/// \brief Directory-backed database with WAL-based crash recovery.
class Database {
 public:
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Opens a database directory, loads the catalog, opens every table
  /// and replays the journal.
  static Result<std::unique_ptr<Database>> Open(const std::string& dir,
                                                const DatabaseOptions& options);

  /// Back-compat shorthand for Open with default (paranoid) options.
  static Result<std::unique_ptr<Database>> Open(const std::string& dir,
                                                bool create_if_missing);

  /// Creates a table and persists the catalog.
  Result<Table*> CreateTable(const std::string& name, const Schema& schema);

  /// Looks up an open table; NotFound when absent, Corruption when the
  /// table was quarantined by a degraded open.
  Result<Table*> GetTable(const std::string& name);

  /// Creates a secondary index and persists the catalog.
  Status CreateIndex(const std::string& table, const IndexSpec& spec);

  /// Journaled insert. AlreadyExists on pk collision.
  Result<int64_t> Insert(const std::string& table, const Row& row);

  /// Journaled batch insert: validates every row up front (AlreadyExists
  /// on any pk collision, against the table or within the batch),
  /// journals all rows under a single fsync, then applies them in
  /// order. The WAL-first contract is unchanged — once this returns OK
  /// the whole batch survives a crash; on a journaling error nothing
  /// was applied. The one sync per batch (instead of one per row) is
  /// what makes bulk ingest commit at memory speed.
  Status InsertBatch(const std::string& table, const std::vector<Row>& rows);

  /// Journaled delete by primary key.
  Status Delete(const std::string& table, int64_t pk);

  /// Journaled update (delete + insert under the same pk).
  Status Update(const std::string& table, const Row& row);

  /// Flushes all tables and truncates the journal. With quarantined
  /// tables present the journal is preserved instead of truncated.
  Status Checkpoint();

  /// Checkpoint + close. Called by the destructor if needed.
  Status Close();

  const std::string& dir() const { return dir_; }

  /// Tables a degraded open quarantined; empty after a paranoid open.
  const std::vector<TableDamage>& DamageReport() const { return damage_; }

  /// Bytes currently pending in the journal.
  Result<uint64_t> JournalBytes() const { return wal_->SizeBytes(); }

  /// Aggregated buffer-pool statistics over every open table.
  /// Thread-safe once Open has returned (the table set is immutable
  /// afterwards unless CreateTable is called, which this codebase only
  /// does during open).
  PagerStats GetPagerStats() const;

 private:
  explicit Database(std::string dir) : dir_(std::move(dir)) {}

  Status ReplayJournal();
  bool IsQuarantined(const std::string& table) const;

  std::string dir_;
  Env* env_ = nullptr;
  bool paranoid_ = true;
  Catalog catalog_;
  std::unique_ptr<Wal> wal_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<TableDamage> damage_;
  bool closed_ = false;
};

}  // namespace vr
