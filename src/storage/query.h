/// \file query.h
/// \brief A small declarative query layer over Table: typed predicates,
/// projection and ordering — the "queries can be performed" surface the
/// paper's §3.4 describes for its Oracle tables, without SQL parsing.
///
/// Example:
///
///   SelectQuery q;
///   q.where = And(Compare("MIN", CompareOp::kGe, Value(int64_t{128})),
///                 Compare("MAX", CompareOp::kLe, Value(int64_t{255})));
///   q.order_by = "I_ID";
///   q.limit = 10;
///   auto rows = ExecuteSelect(*table, q);

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "storage/table.h"

namespace vr {

/// Comparison operators for predicates.
enum class CompareOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  /// Substring match (TEXT columns only).
  kContains,
};

/// \brief Predicate tree node.
struct Predicate {
  enum class Kind { kCompare, kAnd, kOr, kNot, kIsNull } kind = Kind::kCompare;
  // kCompare:
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value literal;
  // kAnd / kOr / kNot (kNot uses children[0]):
  std::vector<std::shared_ptr<Predicate>> children;
};

/// \name Predicate constructors.
/// @{
std::shared_ptr<Predicate> Compare(const std::string& column, CompareOp op,
                                   Value literal);
std::shared_ptr<Predicate> And(std::shared_ptr<Predicate> a,
                               std::shared_ptr<Predicate> b);
std::shared_ptr<Predicate> Or(std::shared_ptr<Predicate> a,
                              std::shared_ptr<Predicate> b);
std::shared_ptr<Predicate> Not(std::shared_ptr<Predicate> a);
std::shared_ptr<Predicate> IsNull(const std::string& column);
/// @}

/// \brief A SELECT over one table.
struct SelectQuery {
  /// Columns to project; empty = all columns in schema order.
  std::vector<std::string> columns;
  /// Filter; null = all rows.
  std::shared_ptr<Predicate> where;
  /// Column to order by ascending; empty = heap order. NULLs sort first.
  std::string order_by;
  bool descending = false;
  /// Maximum rows returned; 0 = unlimited.
  size_t limit = 0;
  /// Materialize blob columns (off keeps video scans cheap).
  bool resolve_blobs = false;
};

/// Evaluates a predicate against a row (exposed for tests).
Result<bool> EvaluatePredicate(const Schema& schema, const Predicate& pred,
                               const Row& row);

/// Runs the query; returns projected rows.
Result<std::vector<Row>> ExecuteSelect(const Table& table,
                                       const SelectQuery& query);

/// Count of rows matching \p where (null = all rows).
Result<uint64_t> ExecuteCount(const Table& table,
                              const std::shared_ptr<Predicate>& where);

}  // namespace vr
