/// \file value.h
/// \brief Typed column values for the embedded relational store.
///
/// The paper's schema needs NUMBER (int64/double), VARCHAR2 (text) and
/// BLOB / ORDImage / ORDVideo (bytes) columns; Value covers exactly
/// those plus NULL.

#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "util/status.h"

namespace vr {

/// Column types supported by the store.
enum class ColumnType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kText = 2,
  kBlob = 3,
};

/// Human-readable type name ("INT64", ...).
const char* ColumnTypeName(ColumnType type);

/// Parses a ColumnTypeName.
Result<ColumnType> ColumnTypeFromName(const std::string& name);

/// \brief A dynamically typed cell: NULL, int64, double, text or blob.
class Value {
 public:
  /// NULL value.
  Value() : payload_(std::monostate{}) {}
  Value(int64_t v) : payload_(v) {}             // NOLINT(runtime/explicit)
  Value(double v) : payload_(v) {}              // NOLINT(runtime/explicit)
  Value(std::string v) : payload_(std::move(v)) {}  // NOLINT
  Value(const char* v) : payload_(std::string(v)) {}  // NOLINT
  Value(std::vector<uint8_t> v) : payload_(std::move(v)) {}  // NOLINT

  static Value Null() { return Value(); }
  static Value Blob(std::vector<uint8_t> bytes) {
    return Value(std::move(bytes));
  }

  bool is_null() const {
    return std::holds_alternative<std::monostate>(payload_);
  }
  bool is_int64() const { return std::holds_alternative<int64_t>(payload_); }
  bool is_double() const { return std::holds_alternative<double>(payload_); }
  bool is_text() const { return std::holds_alternative<std::string>(payload_); }
  bool is_blob() const {
    return std::holds_alternative<std::vector<uint8_t>>(payload_);
  }

  /// True when the value's dynamic type matches \p type (NULL matches any).
  bool Matches(ColumnType type) const;

  int64_t AsInt64() const { return std::get<int64_t>(payload_); }
  double AsDouble() const { return std::get<double>(payload_); }
  const std::string& AsText() const { return std::get<std::string>(payload_); }
  const std::vector<uint8_t>& AsBlob() const {
    return std::get<std::vector<uint8_t>>(payload_);
  }

  /// Debug rendering; blobs show as "<blob N bytes>".
  std::string ToString() const;

  bool operator==(const Value&) const = default;

 private:
  std::variant<std::monostate, int64_t, double, std::string,
               std::vector<uint8_t>>
      payload_;
};

}  // namespace vr
