#include "storage/heap_file.h"

namespace vr {

Result<std::unique_ptr<HeapFile>> HeapFile::Open(Pager* pager) {
  auto heap = std::unique_ptr<HeapFile>(new HeapFile(pager));
  heap->first_page_ = pager->user_root();
  if (heap->first_page_ == kInvalidPageId) {
    VR_ASSIGN_OR_RETURN(heap->first_page_,
                        pager->Allocate(PageType::kSlotted));
    VR_ASSIGN_OR_RETURN(std::shared_ptr<Page> page,
                        pager->Fetch(heap->first_page_));
    SlottedPage(page.get()).Init();
    VR_RETURN_NOT_OK(pager->MarkDirty(heap->first_page_));
    pager->set_user_root(heap->first_page_);
    heap->tail_page_ = heap->first_page_;
  } else {
    // Find the tail of the chain.
    uint32_t cur = heap->first_page_;
    while (true) {
      VR_ASSIGN_OR_RETURN(std::shared_ptr<Page> page, pager->Fetch(cur));
      const uint32_t next = page->next_page();
      if (next == kInvalidPageId) break;
      cur = next;
    }
    heap->tail_page_ = cur;
  }
  return heap;
}

Result<Rid> HeapFile::Insert(const std::vector<uint8_t>& record) {
  // Try the tail page, then grow the chain.
  VR_ASSIGN_OR_RETURN(std::shared_ptr<Page> page, pager_->Fetch(tail_page_));
  SlottedPage slotted(page.get());
  Result<uint16_t> slot = slotted.Insert(record);
  if (slot.ok()) {
    VR_RETURN_NOT_OK(pager_->MarkDirty(tail_page_));
    return Rid{tail_page_, slot.value()};
  }
  if (!slot.status().IsOutOfRange() && !slot.status().IsInvalidArgument()) {
    return slot.status();
  }
  if (record.size() > SlottedPage::MaxRecordSize()) {
    return Status::InvalidArgument(
        "record too large for heap page; use the blob store");
  }
  VR_ASSIGN_OR_RETURN(uint32_t new_page_id,
                      pager_->Allocate(PageType::kSlotted));
  VR_ASSIGN_OR_RETURN(std::shared_ptr<Page> new_page,
                      pager_->Fetch(new_page_id));
  SlottedPage new_slotted(new_page.get());
  new_slotted.Init();
  VR_ASSIGN_OR_RETURN(uint16_t new_slot, new_slotted.Insert(record));
  VR_RETURN_NOT_OK(pager_->MarkDirty(new_page_id));
  page->set_next_page(new_page_id);
  VR_RETURN_NOT_OK(pager_->MarkDirty(tail_page_));
  tail_page_ = new_page_id;
  return Rid{new_page_id, new_slot};
}

Result<std::vector<uint8_t>> HeapFile::Get(const Rid& rid) const {
  VR_ASSIGN_OR_RETURN(std::shared_ptr<Page> page, pager_->Fetch(rid.page_id));
  if (page->type() != PageType::kSlotted) {
    return Status::InvalidArgument("rid does not point at a record page");
  }
  return SlottedPage(page.get()).Get(rid.slot);
}

Status HeapFile::Delete(const Rid& rid) {
  VR_ASSIGN_OR_RETURN(std::shared_ptr<Page> page, pager_->Fetch(rid.page_id));
  if (page->type() != PageType::kSlotted) {
    return Status::InvalidArgument("rid does not point at a record page");
  }
  VR_RETURN_NOT_OK(SlottedPage(page.get()).Delete(rid.slot));
  VR_RETURN_NOT_OK(pager_->MarkDirty(rid.page_id));
  return Status::OK();
}

Result<Rid> HeapFile::Update(const Rid& rid,
                             const std::vector<uint8_t>& record) {
  VR_ASSIGN_OR_RETURN(std::shared_ptr<Page> page, pager_->Fetch(rid.page_id));
  SlottedPage slotted(page.get());
  VR_RETURN_NOT_OK(slotted.Delete(rid.slot));
  VR_RETURN_NOT_OK(pager_->MarkDirty(rid.page_id));
  // Re-insert, preferring the same page.
  Result<uint16_t> slot = slotted.Insert(record);
  if (slot.ok()) {
    return Rid{rid.page_id, slot.value()};
  }
  return Insert(record);
}

Status HeapFile::Scan(
    const std::function<bool(const Rid&, const std::vector<uint8_t>&)>& cb)
    const {
  uint32_t cur = first_page_;
  while (cur != kInvalidPageId) {
    VR_ASSIGN_OR_RETURN(std::shared_ptr<Page> page, pager_->Fetch(cur));
    SlottedPage slotted(page.get());
    for (uint16_t s = 0; s < slotted.slot_count(); ++s) {
      if (!slotted.IsLive(s)) continue;
      VR_ASSIGN_OR_RETURN(std::vector<uint8_t> record, slotted.Get(s));
      if (!cb(Rid{cur, s}, record)) return Status::OK();
    }
    cur = page->next_page();
  }
  return Status::OK();
}

Result<uint64_t> HeapFile::Count() const {
  uint64_t n = 0;
  VR_RETURN_NOT_OK(Scan([&n](const Rid&, const std::vector<uint8_t>&) {
    ++n;
    return true;
  }));
  return n;
}

}  // namespace vr
