#include "storage/row.h"

#include <cstring>

#include "util/string_util.h"

namespace vr {

namespace {

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  Result<uint8_t> U8() {
    if (pos_ + 1 > bytes_.size()) return Truncated();
    return bytes_[pos_++];
  }
  Result<uint32_t> U32() {
    if (pos_ + 4 > bytes_.size()) return Truncated();
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(bytes_[pos_ + static_cast<size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  Result<uint64_t> U64() {
    if (pos_ + 8 > bytes_.size()) return Truncated();
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(bytes_[pos_ + static_cast<size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  Result<std::vector<uint8_t>> Bytes(size_t n) {
    if (pos_ + n > bytes_.size()) return Truncated();
    std::vector<uint8_t> out(bytes_.begin() + static_cast<ptrdiff_t>(pos_),
                             bytes_.begin() + static_cast<ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  Status Truncated() const { return Status::Corruption("truncated row"); }
  const std::vector<uint8_t>& bytes_;
  size_t pos_ = 0;
};

void PutValue(std::vector<uint8_t>* out, const Value& v) {
  if (v.is_null()) {
    PutU8(out, 0);
  } else if (v.is_int64()) {
    PutU8(out, static_cast<uint8_t>(ColumnType::kInt64) + 1);
    PutU64(out, static_cast<uint64_t>(v.AsInt64()));
  } else if (v.is_double()) {
    PutU8(out, static_cast<uint8_t>(ColumnType::kDouble) + 1);
    uint64_t bits = 0;
    const double d = v.AsDouble();
    std::memcpy(&bits, &d, sizeof(bits));
    PutU64(out, bits);
  } else if (v.is_text()) {
    PutU8(out, static_cast<uint8_t>(ColumnType::kText) + 1);
    PutU32(out, static_cast<uint32_t>(v.AsText().size()));
    out->insert(out->end(), v.AsText().begin(), v.AsText().end());
  } else {
    PutU8(out, static_cast<uint8_t>(ColumnType::kBlob) + 1);
    PutU32(out, static_cast<uint32_t>(v.AsBlob().size()));
    out->insert(out->end(), v.AsBlob().begin(), v.AsBlob().end());
  }
}

}  // namespace

Result<std::vector<uint8_t>> SerializeRow(const Schema& schema,
                                          const Row& row) {
  return SerializeRowWithRefs(schema, row, {});
}

Result<std::vector<uint8_t>> SerializeRowWithRefs(
    const Schema& schema, const Row& row,
    const std::vector<std::optional<BlobRef>>& refs) {
  VR_RETURN_NOT_OK(schema.ValidateRow(row));
  std::vector<uint8_t> out;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i < refs.size() && refs[i].has_value()) {
      // Text columns may also overflow out of row (VARCHAR -> CLOB).
      if (schema.columns()[i].type != ColumnType::kBlob &&
          schema.columns()[i].type != ColumnType::kText) {
        return Status::InvalidArgument("blob ref on non-overflowable column");
      }
      PutU8(&out, kBlobRefTag);
      PutU32(&out, refs[i]->first_page);
      PutU64(&out, refs[i]->size);
    } else {
      PutValue(&out, row[i]);
    }
  }
  return out;
}

Result<DecodedRow> DeserializeRow(const Schema& schema,
                                  const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes);
  DecodedRow out;
  out.values.reserve(schema.num_columns());
  out.blob_refs.assign(schema.num_columns(), std::nullopt);
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    VR_ASSIGN_OR_RETURN(uint8_t tag, reader.U8());
    if (tag == 0) {
      out.values.push_back(Value::Null());
    } else if (tag == kBlobRefTag) {
      BlobRef ref;
      VR_ASSIGN_OR_RETURN(ref.first_page, reader.U32());
      VR_ASSIGN_OR_RETURN(ref.size, reader.U64());
      out.blob_refs[i] = ref;
      out.values.push_back(Value::Null());  // resolved later by the Table
    } else {
      const uint8_t type_raw = tag - 1;
      if (type_raw > static_cast<uint8_t>(ColumnType::kBlob)) {
        return Status::Corruption(
            StringPrintf("bad value tag %u in row", tag));
      }
      switch (static_cast<ColumnType>(type_raw)) {
        case ColumnType::kInt64: {
          VR_ASSIGN_OR_RETURN(uint64_t v, reader.U64());
          out.values.push_back(Value(static_cast<int64_t>(v)));
          break;
        }
        case ColumnType::kDouble: {
          VR_ASSIGN_OR_RETURN(uint64_t bits, reader.U64());
          double d = 0.0;
          std::memcpy(&d, &bits, sizeof(d));
          out.values.push_back(Value(d));
          break;
        }
        case ColumnType::kText: {
          VR_ASSIGN_OR_RETURN(uint32_t n, reader.U32());
          VR_ASSIGN_OR_RETURN(std::vector<uint8_t> raw, reader.Bytes(n));
          out.values.push_back(
              Value(std::string(raw.begin(), raw.end())));
          break;
        }
        case ColumnType::kBlob: {
          VR_ASSIGN_OR_RETURN(uint32_t n, reader.U32());
          VR_ASSIGN_OR_RETURN(std::vector<uint8_t> raw, reader.Bytes(n));
          out.values.push_back(Value::Blob(std::move(raw)));
          break;
        }
      }
    }
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after row");
  }
  return out;
}

}  // namespace vr
