/// \file stats.h
/// \brief Service-side observability: latency histogram + stats snapshot.

#pragma once

#include <array>
#include <cstdint>

#include "retrieval/ingest_stats.h"
#include "retrieval/query_stats.h"
#include "storage/pager.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace vr {

/// \brief Log-bucketed latency histogram with percentile estimation.
///
/// Buckets grow geometrically from 1 microsecond, covering roughly
/// 1 us .. 20 minutes; the last bucket absorbs everything above.
/// Thread-safety: fully thread-safe (one internal mutex).
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 64;

  LatencyHistogram();

  /// Records one latency observation (milliseconds, must be >= 0).
  void Record(double ms) EXCLUDES(mutex_);

  /// Percentile estimate in milliseconds for \p p in [0, 100];
  /// 0 when no observations were recorded. Linear interpolation within
  /// the winning bucket.
  double Percentile(double p) const EXCLUDES(mutex_);

  uint64_t Count() const EXCLUDES(mutex_);

  void Reset() EXCLUDES(mutex_);

 private:
  /// Upper bound (exclusive) of bucket \p i in milliseconds. Filled in
  /// the constructor and immutable afterwards, hence unguarded.
  std::array<double, kNumBuckets> bounds_;
  mutable Mutex mutex_{LockLevel::kLeaf, "latency_histogram"};
  std::array<uint64_t, kNumBuckets> counts_ GUARDED_BY(mutex_){};
  uint64_t total_ GUARDED_BY(mutex_) = 0;
};

/// \brief Point-in-time counters of a RetrievalService (the stats RPC
/// payload).
struct ServiceStatsSnapshot {
  uint64_t received = 0;   ///< Submit calls, admitted or not
  uint64_t served = 0;     ///< completed with an OK status
  uint64_t rejected = 0;   ///< refused admission (kUnavailable)
  uint64_t expired = 0;    ///< aborted by their deadline (kDeadlineExceeded)
  uint64_t failed = 0;     ///< completed with any other error
  /// Completed with kPartialResult: ranked results over a degraded
  /// store. Counted under served as well (the request was answered).
  uint64_t degraded = 0;
  uint64_t in_flight = 0;  ///< admitted, not yet completed
  /// Completed-request latency distribution (admission to completion).
  uint64_t latency_count = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  /// Storage buffer-pool counters aggregated over the engine's tables.
  PagerStats pager;
  /// Cumulative engine ingest counters (see ingest_stats.h) — lets an
  /// operator watch a bulk load's progress through the same stats RPC
  /// that reports query health.
  IngestStats ingest;
  /// Cumulative engine query counters (see query_stats.h): per-stage
  /// wall times plus the bucket-pruning ratio
  /// (candidates_scored / candidates_total).
  QueryStats query;
};

}  // namespace vr
