/// \file transport.h
/// \brief Byte transport under the wire protocol: deadline-aware socket
/// I/O plus an in-memory double for tests and fuzzing.
///
/// The frame codecs in wire.h speak to a Transport instead of a raw fd,
/// which buys three things at once:
///   - every Send/Recv takes an absolute deadline (non-blocking sockets
///     plus poll(2)), so the service layer can bound any network wait
///     with kDeadlineExceeded instead of hanging;
///   - short writes and EAGAIN/EWOULDBLOCK on non-blocking fds are
///     handled in one place (the historical SendFrame treated them as
///     hard errors);
///   - fault injection (FaultInjectionTransport) and byte-level fuzzing
///     (BufferTransport) wrap the same interface the production client
///     and server use, mirroring how vr::Env hosts FaultInjectionEnv.

#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace vr {

/// Absolute deadline for one transport operation.
using TransportDeadline = std::chrono::steady_clock::time_point;

/// Sentinel "no deadline": the operation may block indefinitely.
inline constexpr TransportDeadline kNoDeadline = TransportDeadline::max();

/// Absolute deadline \p ms milliseconds from now; kNoDeadline when 0.
inline TransportDeadline DeadlineAfterMs(uint64_t ms) {
  return ms == 0 ? kNoDeadline
                 : std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(ms);
}

/// \brief One bidirectional byte stream (the wire below frames).
///
/// Send/Recv move *up to* len bytes and return how many moved; callers
/// that need full-message semantics loop (wire.h's frame I/O does).
/// Thread-safety: a Transport is owned by one connection handler or
/// client at a time; none of the implementations lock.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends up to \p len bytes before \p deadline. Returns the number of
  /// bytes accepted (>= 1), kDeadlineExceeded when the deadline expires
  /// with the stream unwritable, or IOError on connection failure.
  virtual Result<size_t> Send(const uint8_t* data, size_t len,
                              TransportDeadline deadline) = 0;

  /// Receives up to \p len bytes before \p deadline. Returns the number
  /// of bytes read, 0 on orderly peer close (EOF), kDeadlineExceeded
  /// when the deadline expires with nothing readable, or IOError.
  virtual Result<size_t> Recv(uint8_t* buf, size_t len,
                              TransportDeadline deadline) = 0;

  /// Releases the underlying stream; further I/O fails. Idempotent.
  virtual void Close() = 0;
};

/// \brief Production transport: a connected TCP socket in non-blocking
/// mode, with poll(2)-based deadline waits.
class SocketTransport : public Transport {
 public:
  /// Connects to an IPv4 \p host and \p port, waiting at most
  /// \p timeout_ms (0 = no limit) for the handshake.
  static Result<std::unique_ptr<SocketTransport>> Connect(
      const std::string& host, uint16_t port, uint64_t timeout_ms);

  /// Wraps an already-connected fd (server side), taking ownership and
  /// switching it to non-blocking mode.
  static std::unique_ptr<SocketTransport> Adopt(int fd);

  ~SocketTransport() override { Close(); }
  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  Result<size_t> Send(const uint8_t* data, size_t len,
                      TransportDeadline deadline) override;
  Result<size_t> Recv(uint8_t* buf, size_t len,
                      TransportDeadline deadline) override;
  void Close() override;

  int fd() const { return fd_; }

 private:
  explicit SocketTransport(int fd) : fd_(fd) {}

  /// Waits for \p events (POLLIN/POLLOUT) until \p deadline.
  Status PollWait(short events, TransportDeadline deadline) const;

  int fd_ = -1;
};

/// \brief In-memory transport double for unit tests and the wire
/// fuzzer: Recv consumes a scripted inbound buffer (EOF at its end),
/// Send appends to an outbound buffer.
///
/// Two knobs shape adverse schedules deterministically:
///   - set_recv_chunk(n): Recv returns at most n bytes per call,
///     exercising short-read reassembly;
///   - set_send_limit(n): once n total bytes are accepted, further
///     Sends fail with kDeadlineExceeded — a stalled peer, letting
///     tests drive FrameSender's resumable path.
class BufferTransport : public Transport {
 public:
  BufferTransport() = default;
  explicit BufferTransport(std::vector<uint8_t> inbound)
      : inbound_(std::move(inbound)) {}

  Result<size_t> Send(const uint8_t* data, size_t len,
                      TransportDeadline deadline) override;
  Result<size_t> Recv(uint8_t* buf, size_t len,
                      TransportDeadline deadline) override;
  void Close() override { closed_ = true; }

  void set_recv_chunk(size_t n) { recv_chunk_ = n; }
  /// Total sendable bytes before simulated stall; SIZE_MAX = unlimited.
  void set_send_limit(size_t n) { send_limit_ = n; }

  const std::vector<uint8_t>& sent() const { return sent_; }
  bool closed() const { return closed_; }

 private:
  std::vector<uint8_t> inbound_;
  size_t read_pos_ = 0;
  size_t recv_chunk_ = SIZE_MAX;
  std::vector<uint8_t> sent_;
  size_t send_limit_ = SIZE_MAX;
  bool closed_ = false;
};

}  // namespace vr
