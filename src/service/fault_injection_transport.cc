#include "service/fault_injection_transport.h"

#include <chrono>
#include <thread>
#include <vector>

namespace vr {

FaultInjectionTransport::Fault FaultInjectionTransport::DrawFault(
    bool for_send) {
  double u = rng_.UniformDouble();
  double band = options_.reset_prob;
  if (u < band) return Fault::kReset;
  band += options_.truncate_prob;
  if (u < band) return for_send ? Fault::kTruncate : Fault::kReset;
  band += options_.corrupt_prob;
  if (u < band) return Fault::kCorrupt;
  band += options_.stall_prob;
  if (u < band) return Fault::kStall;
  return Fault::kNone;
}

Status FaultInjectionTransport::InjectReset() {
  ++resets_;
  dead_ = true;
  if (inner_) inner_->Close();
  return Status::IOError("injected connection reset");
}

Result<size_t> FaultInjectionTransport::Send(const uint8_t* data, size_t len,
                                             TransportDeadline deadline) {
  ++sends_;
  if (dead_) return Status::IOError("injected connection reset");
  if (fail_send_at_ != 0 && sends_ == fail_send_at_) {
    fail_send_at_ = 0;
    return InjectReset();
  }
  switch (DrawFault(/*for_send=*/true)) {
    case Fault::kReset:
      return InjectReset();
    case Fault::kTruncate: {
      // Forward a strict prefix, then kill the connection: the peer
      // sees a torn frame followed by EOF.
      size_t half = len / 2;
      if (half > 0) {
        size_t done = 0;
        while (done < half) {
          auto sent = inner_->Send(data + done, half - done, deadline);
          if (!sent.ok()) break;
          done += *sent;
        }
      }
      ++resets_;
      dead_ = true;
      inner_->Close();
      return Status::IOError("injected torn frame");
    }
    case Fault::kCorrupt: {
      ++corruptions_;
      std::vector<uint8_t> copy(data, data + len);
      uint64_t bit = rng_.Next() % (len * 8);
      copy[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      return inner_->Send(copy.data(), len, deadline);
    }
    case Fault::kStall:
      ++stalls_;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.stall_ms));
      break;
    case Fault::kNone:
      break;
  }
  return inner_->Send(data, len, deadline);
}

Result<size_t> FaultInjectionTransport::Recv(uint8_t* buf, size_t len,
                                             TransportDeadline deadline) {
  ++recvs_;
  if (dead_) return Status::IOError("injected connection reset");
  if (fail_recv_at_ != 0 && recvs_ == fail_recv_at_) {
    fail_recv_at_ = 0;
    return InjectReset();
  }
  Fault fault = DrawFault(/*for_send=*/false);
  if (fault == Fault::kReset) return InjectReset();
  if (fault == Fault::kStall) {
    ++stalls_;
    std::this_thread::sleep_for(std::chrono::milliseconds(options_.stall_ms));
  }
  auto got = inner_->Recv(buf, len, deadline);
  if (!got.ok() || *got == 0) return got;
  if (fault == Fault::kCorrupt) {
    ++corruptions_;
    uint64_t bit = rng_.Next() % (*got * 8);
    buf[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  }
  return got;
}

void FaultInjectionTransport::Close() {
  if (inner_) inner_->Close();
}

}  // namespace vr
