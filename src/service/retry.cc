#include "service/retry.h"

#include <algorithm>
#include <cmath>

namespace vr {

bool IsRetryableStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kIOError:
    case StatusCode::kUnavailable:
    case StatusCode::kCorruption:
      return true;
    default:
      return false;
  }
}

uint64_t BackoffForAttempt(const RetryPolicy& policy, int attempt, Rng* rng) {
  if (attempt < 2) return 0;
  double base = static_cast<double>(policy.initial_backoff_ms) *
                std::pow(policy.multiplier, attempt - 2);
  base = std::min(base, static_cast<double>(policy.max_backoff_ms));
  if (policy.jitter > 0.0 && rng != nullptr) {
    base *= rng->UniformDouble(1.0 - policy.jitter, 1.0 + policy.jitter);
  }
  return static_cast<uint64_t>(std::max(0.0, base));
}

bool CircuitBreaker::Allow(TimePoint now) {
  if (options_.failure_threshold <= 0) return true;
  switch (state_) {
    case State::kClosed:
    case State::kHalfOpen:
      return true;
    case State::kOpen:
      if (now >= open_until_) {
        state_ = State::kHalfOpen;
        return true;
      }
      return false;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  consecutive_failures_ = 0;
  state_ = State::kClosed;
}

void CircuitBreaker::RecordFailure(TimePoint now) {
  if (options_.failure_threshold <= 0) return;
  if (state_ == State::kHalfOpen) {
    // The probe failed: reopen for a fresh interval.
    state_ = State::kOpen;
    open_until_ = now + std::chrono::milliseconds(options_.open_ms);
    return;
  }
  ++consecutive_failures_;
  if (consecutive_failures_ >= options_.failure_threshold) {
    state_ = State::kOpen;
    open_until_ = now + std::chrono::milliseconds(options_.open_ms);
  }
}

}  // namespace vr
