#include "service/wire.h"

#include <algorithm>
#include <cstring>

namespace vr {

namespace {

/// Checksummed-frame marker: both high bits of the type byte. Two bits
/// (not one) so a single bit flip cannot turn a checksummed frame into
/// a well-formed legacy frame — 0x80 or 0x40 alone is rejected as
/// corruption. Legacy (pre-checksum) frames have both bits clear.
constexpr uint8_t kChecksumMarker = 0xC0;

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

template <typename T>
void PutLe(std::vector<uint8_t>* out, T v) {
  for (size_t i = 0; i < sizeof(T); ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutF64(std::vector<uint8_t>* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutLe<uint64_t>(out, bits);
}

/// Bounds-checked little-endian cursor over a payload.
class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& buf) : buf_(buf) {}

  bool ReadU8(uint8_t* v) { return ReadRaw(v, 1); }
  bool ReadU16(uint16_t* v) { return ReadLe(v); }
  bool ReadU32(uint32_t* v) { return ReadLe(v); }
  bool ReadU64(uint64_t* v) { return ReadLe(v); }
  bool ReadI64(int64_t* v) {
    uint64_t raw;
    if (!ReadLe(&raw)) return false;
    std::memcpy(v, &raw, sizeof(raw));
    return true;
  }
  bool ReadF64(double* v) {
    uint64_t bits;
    if (!ReadLe(&bits)) return false;
    std::memcpy(v, &bits, sizeof(bits));
    return true;
  }
  bool ReadBytes(std::vector<uint8_t>* out, size_t n) {
    if (buf_.size() - pos_ < n) return false;
    out->assign(buf_.begin() + static_cast<ptrdiff_t>(pos_),
                buf_.begin() + static_cast<ptrdiff_t>(pos_ + n));
    pos_ += n;
    return true;
  }
  bool AtEnd() const { return pos_ == buf_.size(); }

 private:
  bool ReadRaw(void* out, size_t n) {
    if (buf_.size() - pos_ < n) return false;
    std::memcpy(out, buf_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  template <typename T>
  bool ReadLe(T* v) {
    if (buf_.size() - pos_ < sizeof(T)) return false;
    T out = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      out |= static_cast<T>(buf_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    *v = out;
    return true;
  }

  const std::vector<uint8_t>& buf_;
  size_t pos_ = 0;
};

Status Truncated(const char* what) {
  return Status::Corruption(std::string("truncated wire message: ") + what);
}

/// Decodes a transported status code, rejecting values this build does
/// not know (a corrupt or incompatible frame, not a new error class).
Status DecodeStatusField(uint8_t code, std::vector<uint8_t> msg) {
  return Status(static_cast<StatusCode>(code),
                std::string(msg.begin(), msg.end()));
}

bool ValidStatusCode(uint8_t code) { return code <= kMaxStatusCode; }

}  // namespace

uint32_t FrameChecksum(MessageType type, const uint8_t* payload, size_t len) {
  uint64_t h = 0xCBF29CE484222325ULL;
  h ^= static_cast<uint8_t>(type);
  h *= 0x100000001B3ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= payload[i];
    h *= 0x100000001B3ULL;
  }
  return static_cast<uint32_t>(h ^ (h >> 32));
}

std::vector<uint8_t> EncodeQueryRequest(const ServiceRequest& request) {
  std::vector<uint8_t> out;
  out.reserve(40 + request.image.SizeBytes());
  PutLe<uint64_t>(&out, request.request_id);
  PutU8(&out, static_cast<uint8_t>(request.mode));
  PutU8(&out, static_cast<uint8_t>(request.feature));
  PutLe<uint32_t>(&out, static_cast<uint32_t>(request.k));
  PutLe<uint64_t>(&out, request.deadline_ms);
  if (request.mode == QueryMode::kById) {
    // By-id queries ship the stored frame id in place of the image.
    PutLe<uint64_t>(&out, static_cast<uint64_t>(request.frame_id));
    return out;
  }
  PutLe<uint16_t>(&out, static_cast<uint16_t>(request.image.width()));
  PutLe<uint16_t>(&out, static_cast<uint16_t>(request.image.height()));
  PutU8(&out, static_cast<uint8_t>(request.image.channels()));
  const std::vector<uint8_t>& pixels = request.image.buffer();
  out.insert(out.end(), pixels.begin(), pixels.end());
  return out;
}

Result<ServiceRequest> DecodeQueryRequest(
    const std::vector<uint8_t>& payload) {
  Reader reader(payload);
  ServiceRequest request;
  uint8_t mode = 0;
  uint8_t feature = 0;
  uint32_t k = 0;
  uint16_t width = 0;
  uint16_t height = 0;
  uint8_t channels = 0;
  if (!reader.ReadU64(&request.request_id) || !reader.ReadU8(&mode) ||
      !reader.ReadU8(&feature) || !reader.ReadU32(&k) ||
      !reader.ReadU64(&request.deadline_ms)) {
    return Truncated("query request header");
  }
  if (mode > static_cast<uint8_t>(QueryMode::kById)) {
    return Status::InvalidArgument("unknown query mode on wire");
  }
  if (feature >= kNumFeatureKinds) {
    return Status::InvalidArgument("unknown feature kind on wire");
  }
  request.mode = static_cast<QueryMode>(mode);
  request.feature = static_cast<FeatureKind>(feature);
  request.k = k;
  if (request.mode == QueryMode::kById) {
    if (!reader.ReadI64(&request.frame_id) || !reader.AtEnd()) {
      return Truncated("query request frame id");
    }
    return request;
  }
  if (!reader.ReadU16(&width) || !reader.ReadU16(&height) ||
      !reader.ReadU8(&channels)) {
    return Truncated("query request header");
  }
  if (channels != 1 && channels != 3) {
    return Status::InvalidArgument("wire image must have 1 or 3 channels");
  }
  const size_t pixel_bytes = static_cast<size_t>(width) * height * channels;
  std::vector<uint8_t> pixels;
  if (!reader.ReadBytes(&pixels, pixel_bytes) || !reader.AtEnd()) {
    return Truncated("query request pixels");
  }
  VR_ASSIGN_OR_RETURN(request.image,
                      Image::FromData(width, height, channels,
                                      std::move(pixels)));
  return request;
}

std::vector<uint8_t> EncodeQueryResponse(const ServiceResponse& response) {
  std::vector<uint8_t> out;
  PutLe<uint64_t>(&out, response.request_id);
  PutU8(&out, static_cast<uint8_t>(response.status.code()));
  const std::string& msg = response.status.message();
  PutLe<uint32_t>(&out, static_cast<uint32_t>(msg.size()));
  out.insert(out.end(), msg.begin(), msg.end());
  PutLe<uint64_t>(&out, response.stats.candidates);
  PutLe<uint64_t>(&out, response.stats.total);
  PutLe<uint32_t>(&out, static_cast<uint32_t>(response.results.size()));
  for (const QueryResult& r : response.results) {
    PutLe<uint64_t>(&out, static_cast<uint64_t>(r.i_id));
    PutLe<uint64_t>(&out, static_cast<uint64_t>(r.v_id));
    PutF64(&out, r.score);
  }
  return out;
}

Result<ServiceResponse> DecodeQueryResponse(
    const std::vector<uint8_t>& payload) {
  Reader reader(payload);
  ServiceResponse response;
  uint8_t code = 0;
  uint32_t msg_len = 0;
  if (!reader.ReadU64(&response.request_id) || !reader.ReadU8(&code) ||
      !reader.ReadU32(&msg_len)) {
    return Truncated("query response header");
  }
  if (!ValidStatusCode(code)) {
    return Status::Corruption("unknown status code on wire");
  }
  std::vector<uint8_t> msg;
  if (!reader.ReadBytes(&msg, msg_len)) {
    return Truncated("query response status message");
  }
  response.status = DecodeStatusField(code, std::move(msg));
  uint64_t candidates = 0;
  uint64_t total = 0;
  uint32_t n_results = 0;
  if (!reader.ReadU64(&candidates) || !reader.ReadU64(&total) ||
      !reader.ReadU32(&n_results)) {
    return Truncated("query response stats");
  }
  response.stats.candidates = candidates;
  response.stats.total = total;
  // Bound the reserve by what the payload can actually hold (24 bytes
  // per row) so a forged count cannot force a huge allocation.
  response.results.reserve(
      std::min<size_t>(n_results, payload.size() / 24 + 1));
  for (uint32_t i = 0; i < n_results; ++i) {
    QueryResult r;
    if (!reader.ReadI64(&r.i_id) || !reader.ReadI64(&r.v_id) ||
        !reader.ReadF64(&r.score)) {
      return Truncated("query response result row");
    }
    response.results.push_back(std::move(r));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after query response");
  }
  return response;
}

std::vector<uint8_t> EncodeStatsResponse(const ServiceStatsSnapshot& stats) {
  std::vector<uint8_t> out;
  PutU8(&out, 0);  // status code: stats snapshots always succeed
  PutLe<uint64_t>(&out, stats.received);
  PutLe<uint64_t>(&out, stats.served);
  PutLe<uint64_t>(&out, stats.rejected);
  PutLe<uint64_t>(&out, stats.expired);
  PutLe<uint64_t>(&out, stats.failed);
  PutLe<uint64_t>(&out, stats.degraded);
  PutLe<uint64_t>(&out, stats.in_flight);
  PutLe<uint64_t>(&out, stats.latency_count);
  PutF64(&out, stats.p50_ms);
  PutF64(&out, stats.p95_ms);
  PutF64(&out, stats.p99_ms);
  PutLe<uint64_t>(&out, stats.pager.fetches);
  PutLe<uint64_t>(&out, stats.pager.hits);
  PutLe<uint64_t>(&out, stats.pager.misses);
  PutLe<uint64_t>(&out, stats.pager.evictions);
  PutLe<uint64_t>(&out, stats.pager.checksum_failures);
  PutLe<uint64_t>(&out, stats.ingest.videos_ingested);
  PutLe<uint64_t>(&out, stats.ingest.frames_decoded);
  PutLe<uint64_t>(&out, stats.ingest.keyframes_kept);
  PutF64(&out, stats.ingest.decode_ms);
  PutF64(&out, stats.ingest.extract_ms);
  PutF64(&out, stats.ingest.commit_ms);
  // Count-prefixed so the wire stays decodable if extractors are added.
  PutLe<uint32_t>(&out, static_cast<uint32_t>(stats.ingest.extractor_ms.size()));
  for (double ms : stats.ingest.extractor_ms) PutF64(&out, ms);
  PutLe<uint64_t>(&out, stats.query.image_queries);
  PutLe<uint64_t>(&out, stats.query.video_queries);
  PutLe<uint64_t>(&out, stats.query.sharded_ranks);
  PutLe<uint64_t>(&out, stats.query.candidates_scored);
  PutLe<uint64_t>(&out, stats.query.candidates_total);
  PutLe<uint64_t>(&out, stats.query.id_queries);
  PutLe<uint64_t>(&out, stats.query.cache_hits);
  PutLe<uint64_t>(&out, stats.query.cache_misses);
  PutLe<uint64_t>(&out, stats.query.two_stage_queries);
  PutLe<uint64_t>(&out, stats.query.coarse_candidates);
  PutF64(&out, stats.query.extract_ms);
  PutF64(&out, stats.query.select_ms);
  PutF64(&out, stats.query.rank_ms);
  // Optional tail (decoders tolerate its absence): the two-stage
  // fallback counters added after the frame above was already in the
  // field. Always appended going forward; new fields join this tail.
  PutLe<uint64_t>(&out, stats.query.two_stage_fallbacks);
  PutLe<uint64_t>(&out, stats.query.margin_kept);
  return out;
}

Result<ServiceStatsSnapshot> DecodeStatsResponse(
    const std::vector<uint8_t>& payload) {
  Reader reader(payload);
  ServiceStatsSnapshot stats;
  uint8_t code = 0;
  if (!reader.ReadU8(&code) || !reader.ReadU64(&stats.received) ||
      !reader.ReadU64(&stats.served) || !reader.ReadU64(&stats.rejected) ||
      !reader.ReadU64(&stats.expired) || !reader.ReadU64(&stats.failed) ||
      !reader.ReadU64(&stats.degraded) ||
      !reader.ReadU64(&stats.in_flight) ||
      !reader.ReadU64(&stats.latency_count) || !reader.ReadF64(&stats.p50_ms) ||
      !reader.ReadF64(&stats.p95_ms) || !reader.ReadF64(&stats.p99_ms) ||
      !reader.ReadU64(&stats.pager.fetches) ||
      !reader.ReadU64(&stats.pager.hits) ||
      !reader.ReadU64(&stats.pager.misses) ||
      !reader.ReadU64(&stats.pager.evictions) ||
      !reader.ReadU64(&stats.pager.checksum_failures) ||
      !reader.ReadU64(&stats.ingest.videos_ingested) ||
      !reader.ReadU64(&stats.ingest.frames_decoded) ||
      !reader.ReadU64(&stats.ingest.keyframes_kept) ||
      !reader.ReadF64(&stats.ingest.decode_ms) ||
      !reader.ReadF64(&stats.ingest.extract_ms) ||
      !reader.ReadF64(&stats.ingest.commit_ms)) {
    return Truncated("stats response");
  }
  if (!ValidStatusCode(code)) {
    return Status::Corruption("unknown status code on wire");
  }
  uint32_t n_extractors = 0;
  if (!reader.ReadU32(&n_extractors)) return Truncated("stats response");
  for (uint32_t i = 0; i < n_extractors; ++i) {
    double ms = 0.0;
    if (!reader.ReadF64(&ms)) return Truncated("stats response");
    // Unknown trailing extractors (newer peer) are read and dropped.
    if (i < stats.ingest.extractor_ms.size()) stats.ingest.extractor_ms[i] = ms;
  }
  if (!reader.ReadU64(&stats.query.image_queries) ||
      !reader.ReadU64(&stats.query.video_queries) ||
      !reader.ReadU64(&stats.query.sharded_ranks) ||
      !reader.ReadU64(&stats.query.candidates_scored) ||
      !reader.ReadU64(&stats.query.candidates_total) ||
      !reader.ReadU64(&stats.query.id_queries) ||
      !reader.ReadU64(&stats.query.cache_hits) ||
      !reader.ReadU64(&stats.query.cache_misses) ||
      !reader.ReadU64(&stats.query.two_stage_queries) ||
      !reader.ReadU64(&stats.query.coarse_candidates) ||
      !reader.ReadF64(&stats.query.extract_ms) ||
      !reader.ReadF64(&stats.query.select_ms) ||
      !reader.ReadF64(&stats.query.rank_ms)) {
    return Truncated("stats response");
  }
  // Optional tail: a peer predating the two-stage fallback counters
  // ends the payload here; the counters then stay zero. When the tail
  // is present it must be complete — a half tail is corruption, not
  // version skew.
  if (!reader.AtEnd()) {
    if (!reader.ReadU64(&stats.query.two_stage_fallbacks) ||
        !reader.ReadU64(&stats.query.margin_kept)) {
      return Truncated("stats response");
    }
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after stats response");
  }
  return stats;
}

std::vector<uint8_t> EncodeErrorResponse(const Status& status) {
  std::vector<uint8_t> out;
  PutU8(&out, static_cast<uint8_t>(status.code()));
  const std::string& msg = status.message();
  PutLe<uint32_t>(&out, static_cast<uint32_t>(msg.size()));
  out.insert(out.end(), msg.begin(), msg.end());
  return out;
}

Status DecodeErrorResponse(const std::vector<uint8_t>& payload, Status* out) {
  Reader reader(payload);
  uint8_t code = 0;
  uint32_t msg_len = 0;
  if (!reader.ReadU8(&code) || !reader.ReadU32(&msg_len)) {
    return Truncated("error response header");
  }
  if (!ValidStatusCode(code) || code == 0) {
    return Status::Corruption("unknown status code on wire");
  }
  std::vector<uint8_t> msg;
  if (!reader.ReadBytes(&msg, msg_len) || !reader.AtEnd()) {
    return Truncated("error response message");
  }
  *out = DecodeStatusField(code, std::move(msg));
  return Status::OK();
}

FrameSender::FrameSender(MessageType type,
                         const std::vector<uint8_t>& payload) {
  frame_.reserve(9 + payload.size());
  PutLe<uint32_t>(&frame_, static_cast<uint32_t>(payload.size()));
  PutU8(&frame_, static_cast<uint8_t>(type) | kChecksumMarker);
  PutLe<uint32_t>(&frame_,
                  FrameChecksum(type, payload.data(), payload.size()));
  frame_.insert(frame_.end(), payload.begin(), payload.end());
}

Status FrameSender::Resume(Transport* transport, TransportDeadline deadline) {
  while (offset_ < frame_.size()) {
    auto sent = transport->Send(frame_.data() + offset_,
                                frame_.size() - offset_, deadline);
    if (!sent.ok()) return sent.status();
    offset_ += *sent;
  }
  return Status::OK();
}

Status SendFrame(Transport* transport, MessageType type,
                 const std::vector<uint8_t>& payload,
                 TransportDeadline deadline) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload too large");
  }
  FrameSender sender(type, payload);
  return sender.Resume(transport, deadline);
}

namespace {

/// Reads exactly \p n bytes. \p any_received distinguishes EOF at a
/// frame boundary (clean close) from EOF mid-frame (torn frame).
Status RecvAll(Transport* transport, uint8_t* buf, size_t n,
               TransportDeadline deadline, bool* any_received) {
  size_t got = 0;
  while (got < n) {
    auto r = transport->Recv(buf + got, n - got, deadline);
    if (!r.ok()) return r.status();
    if (*r == 0) {
      return (got == 0 && !*any_received)
                 ? Status::IOError("connection closed")
                 : Status::IOError("connection closed mid-frame");
    }
    got += *r;
    *any_received = true;
  }
  return Status::OK();
}

}  // namespace

Result<Frame> RecvFrame(Transport* transport, TransportDeadline deadline,
                        size_t max_payload) {
  bool any = false;
  uint8_t header[5];
  VR_RETURN_NOT_OK(RecvAll(transport, header, sizeof(header), deadline, &any));
  uint32_t len = 0;
  for (size_t i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(header[i]) << (8 * i);
  }
  // Length is validated before any payload allocation, so a forged
  // length field cannot drive an over-allocation.
  if (len > max_payload) {
    return Status::Corruption("oversized wire frame");
  }
  const uint8_t type_byte = header[4];
  const uint8_t version_bits = type_byte & kChecksumMarker;
  if (version_bits != 0 && version_bits != kChecksumMarker) {
    return Status::Corruption("corrupt frame version bits");
  }
  const bool checksummed = version_bits == kChecksumMarker;
  const uint8_t raw_type = type_byte & static_cast<uint8_t>(~kChecksumMarker);
  if (raw_type == 0 || raw_type > kMaxMessageType) {
    return Status::Corruption("unknown wire message type");
  }

  uint32_t expected_checksum = 0;
  if (checksummed) {
    uint8_t sum[4];
    VR_RETURN_NOT_OK(RecvAll(transport, sum, sizeof(sum), deadline, &any));
    for (size_t i = 0; i < 4; ++i) {
      expected_checksum |= static_cast<uint32_t>(sum[i]) << (8 * i);
    }
  }

  Frame frame;
  frame.type = static_cast<MessageType>(raw_type);
  frame.payload.resize(len);
  if (len > 0) {
    VR_RETURN_NOT_OK(
        RecvAll(transport, frame.payload.data(), len, deadline, &any));
  }
  if (checksummed) {
    const uint32_t actual = FrameChecksum(frame.type, frame.payload.data(),
                                          frame.payload.size());
    if (actual != expected_checksum) {
      return Status::Corruption("frame checksum mismatch");
    }
  }
  return frame;
}

}  // namespace vr
