#include "service/wire.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "util/string_util.h"

namespace vr {

namespace {

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

template <typename T>
void PutLe(std::vector<uint8_t>* out, T v) {
  for (size_t i = 0; i < sizeof(T); ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutF64(std::vector<uint8_t>* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutLe<uint64_t>(out, bits);
}

/// Bounds-checked little-endian cursor over a payload.
class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& buf) : buf_(buf) {}

  bool ReadU8(uint8_t* v) { return ReadRaw(v, 1); }
  bool ReadU16(uint16_t* v) { return ReadLe(v); }
  bool ReadU32(uint32_t* v) { return ReadLe(v); }
  bool ReadU64(uint64_t* v) { return ReadLe(v); }
  bool ReadI64(int64_t* v) {
    uint64_t raw;
    if (!ReadLe(&raw)) return false;
    std::memcpy(v, &raw, sizeof(raw));
    return true;
  }
  bool ReadF64(double* v) {
    uint64_t bits;
    if (!ReadLe(&bits)) return false;
    std::memcpy(v, &bits, sizeof(bits));
    return true;
  }
  bool ReadBytes(std::vector<uint8_t>* out, size_t n) {
    if (buf_.size() - pos_ < n) return false;
    out->assign(buf_.begin() + static_cast<ptrdiff_t>(pos_),
                buf_.begin() + static_cast<ptrdiff_t>(pos_ + n));
    pos_ += n;
    return true;
  }
  bool AtEnd() const { return pos_ == buf_.size(); }

 private:
  bool ReadRaw(void* out, size_t n) {
    if (buf_.size() - pos_ < n) return false;
    std::memcpy(out, buf_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  template <typename T>
  bool ReadLe(T* v) {
    if (buf_.size() - pos_ < sizeof(T)) return false;
    T out = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      out |= static_cast<T>(buf_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    *v = out;
    return true;
  }

  const std::vector<uint8_t>& buf_;
  size_t pos_ = 0;
};

Status Truncated(const char* what) {
  return Status::Corruption(std::string("truncated wire message: ") + what);
}

}  // namespace

std::vector<uint8_t> EncodeQueryRequest(const ServiceRequest& request) {
  std::vector<uint8_t> out;
  out.reserve(32 + request.image.SizeBytes());
  PutU8(&out, static_cast<uint8_t>(request.mode));
  PutU8(&out, static_cast<uint8_t>(request.feature));
  PutLe<uint32_t>(&out, static_cast<uint32_t>(request.k));
  PutLe<uint64_t>(&out, request.deadline_ms);
  PutLe<uint16_t>(&out, static_cast<uint16_t>(request.image.width()));
  PutLe<uint16_t>(&out, static_cast<uint16_t>(request.image.height()));
  PutU8(&out, static_cast<uint8_t>(request.image.channels()));
  const std::vector<uint8_t>& pixels = request.image.buffer();
  out.insert(out.end(), pixels.begin(), pixels.end());
  return out;
}

Result<ServiceRequest> DecodeQueryRequest(
    const std::vector<uint8_t>& payload) {
  Reader reader(payload);
  ServiceRequest request;
  uint8_t mode = 0;
  uint8_t feature = 0;
  uint32_t k = 0;
  uint16_t width = 0;
  uint16_t height = 0;
  uint8_t channels = 0;
  if (!reader.ReadU8(&mode) || !reader.ReadU8(&feature) ||
      !reader.ReadU32(&k) || !reader.ReadU64(&request.deadline_ms) ||
      !reader.ReadU16(&width) || !reader.ReadU16(&height) ||
      !reader.ReadU8(&channels)) {
    return Truncated("query request header");
  }
  if (mode > static_cast<uint8_t>(QueryMode::kSingleFeature)) {
    return Status::InvalidArgument("unknown query mode on wire");
  }
  if (feature >= kNumFeatureKinds) {
    return Status::InvalidArgument("unknown feature kind on wire");
  }
  if (channels != 1 && channels != 3) {
    return Status::InvalidArgument("wire image must have 1 or 3 channels");
  }
  request.mode = static_cast<QueryMode>(mode);
  request.feature = static_cast<FeatureKind>(feature);
  request.k = k;
  const size_t pixel_bytes = static_cast<size_t>(width) * height * channels;
  std::vector<uint8_t> pixels;
  if (!reader.ReadBytes(&pixels, pixel_bytes) || !reader.AtEnd()) {
    return Truncated("query request pixels");
  }
  VR_ASSIGN_OR_RETURN(request.image,
                      Image::FromData(width, height, channels,
                                      std::move(pixels)));
  return request;
}

std::vector<uint8_t> EncodeQueryResponse(const ServiceResponse& response) {
  std::vector<uint8_t> out;
  PutU8(&out, static_cast<uint8_t>(response.status.code()));
  const std::string& msg = response.status.message();
  PutLe<uint32_t>(&out, static_cast<uint32_t>(msg.size()));
  out.insert(out.end(), msg.begin(), msg.end());
  PutLe<uint64_t>(&out, response.stats.candidates);
  PutLe<uint64_t>(&out, response.stats.total);
  PutLe<uint32_t>(&out, static_cast<uint32_t>(response.results.size()));
  for (const QueryResult& r : response.results) {
    PutLe<uint64_t>(&out, static_cast<uint64_t>(r.i_id));
    PutLe<uint64_t>(&out, static_cast<uint64_t>(r.v_id));
    PutF64(&out, r.score);
  }
  return out;
}

Result<ServiceResponse> DecodeQueryResponse(
    const std::vector<uint8_t>& payload) {
  Reader reader(payload);
  ServiceResponse response;
  uint8_t code = 0;
  uint32_t msg_len = 0;
  if (!reader.ReadU8(&code) || !reader.ReadU32(&msg_len)) {
    return Truncated("query response header");
  }
  std::vector<uint8_t> msg;
  if (!reader.ReadBytes(&msg, msg_len)) {
    return Truncated("query response status message");
  }
  response.status = Status(static_cast<StatusCode>(code),
                           std::string(msg.begin(), msg.end()));
  uint64_t candidates = 0;
  uint64_t total = 0;
  uint32_t n_results = 0;
  if (!reader.ReadU64(&candidates) || !reader.ReadU64(&total) ||
      !reader.ReadU32(&n_results)) {
    return Truncated("query response stats");
  }
  response.stats.candidates = candidates;
  response.stats.total = total;
  response.results.reserve(n_results);
  for (uint32_t i = 0; i < n_results; ++i) {
    QueryResult r;
    if (!reader.ReadI64(&r.i_id) || !reader.ReadI64(&r.v_id) ||
        !reader.ReadF64(&r.score)) {
      return Truncated("query response result row");
    }
    response.results.push_back(std::move(r));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after query response");
  }
  return response;
}

std::vector<uint8_t> EncodeStatsResponse(const ServiceStatsSnapshot& stats) {
  std::vector<uint8_t> out;
  PutU8(&out, 0);  // status code: stats snapshots always succeed
  PutLe<uint64_t>(&out, stats.received);
  PutLe<uint64_t>(&out, stats.served);
  PutLe<uint64_t>(&out, stats.rejected);
  PutLe<uint64_t>(&out, stats.expired);
  PutLe<uint64_t>(&out, stats.failed);
  PutLe<uint64_t>(&out, stats.in_flight);
  PutLe<uint64_t>(&out, stats.latency_count);
  PutF64(&out, stats.p50_ms);
  PutF64(&out, stats.p95_ms);
  PutF64(&out, stats.p99_ms);
  PutLe<uint64_t>(&out, stats.pager.fetches);
  PutLe<uint64_t>(&out, stats.pager.hits);
  PutLe<uint64_t>(&out, stats.pager.misses);
  PutLe<uint64_t>(&out, stats.pager.evictions);
  PutLe<uint64_t>(&out, stats.pager.checksum_failures);
  PutLe<uint64_t>(&out, stats.ingest.videos_ingested);
  PutLe<uint64_t>(&out, stats.ingest.frames_decoded);
  PutLe<uint64_t>(&out, stats.ingest.keyframes_kept);
  PutF64(&out, stats.ingest.decode_ms);
  PutF64(&out, stats.ingest.extract_ms);
  PutF64(&out, stats.ingest.commit_ms);
  // Count-prefixed so the wire stays decodable if extractors are added.
  PutLe<uint32_t>(&out, static_cast<uint32_t>(stats.ingest.extractor_ms.size()));
  for (double ms : stats.ingest.extractor_ms) PutF64(&out, ms);
  PutLe<uint64_t>(&out, stats.query.image_queries);
  PutLe<uint64_t>(&out, stats.query.video_queries);
  PutLe<uint64_t>(&out, stats.query.sharded_ranks);
  PutLe<uint64_t>(&out, stats.query.candidates_scored);
  PutLe<uint64_t>(&out, stats.query.candidates_total);
  PutF64(&out, stats.query.extract_ms);
  PutF64(&out, stats.query.select_ms);
  PutF64(&out, stats.query.rank_ms);
  return out;
}

Result<ServiceStatsSnapshot> DecodeStatsResponse(
    const std::vector<uint8_t>& payload) {
  Reader reader(payload);
  ServiceStatsSnapshot stats;
  uint8_t code = 0;
  if (!reader.ReadU8(&code) || !reader.ReadU64(&stats.received) ||
      !reader.ReadU64(&stats.served) || !reader.ReadU64(&stats.rejected) ||
      !reader.ReadU64(&stats.expired) || !reader.ReadU64(&stats.failed) ||
      !reader.ReadU64(&stats.in_flight) ||
      !reader.ReadU64(&stats.latency_count) || !reader.ReadF64(&stats.p50_ms) ||
      !reader.ReadF64(&stats.p95_ms) || !reader.ReadF64(&stats.p99_ms) ||
      !reader.ReadU64(&stats.pager.fetches) ||
      !reader.ReadU64(&stats.pager.hits) ||
      !reader.ReadU64(&stats.pager.misses) ||
      !reader.ReadU64(&stats.pager.evictions) ||
      !reader.ReadU64(&stats.pager.checksum_failures) ||
      !reader.ReadU64(&stats.ingest.videos_ingested) ||
      !reader.ReadU64(&stats.ingest.frames_decoded) ||
      !reader.ReadU64(&stats.ingest.keyframes_kept) ||
      !reader.ReadF64(&stats.ingest.decode_ms) ||
      !reader.ReadF64(&stats.ingest.extract_ms) ||
      !reader.ReadF64(&stats.ingest.commit_ms)) {
    return Truncated("stats response");
  }
  uint32_t n_extractors = 0;
  if (!reader.ReadU32(&n_extractors)) return Truncated("stats response");
  for (uint32_t i = 0; i < n_extractors; ++i) {
    double ms = 0.0;
    if (!reader.ReadF64(&ms)) return Truncated("stats response");
    // Unknown trailing extractors (newer peer) are read and dropped.
    if (i < stats.ingest.extractor_ms.size()) stats.ingest.extractor_ms[i] = ms;
  }
  if (!reader.ReadU64(&stats.query.image_queries) ||
      !reader.ReadU64(&stats.query.video_queries) ||
      !reader.ReadU64(&stats.query.sharded_ranks) ||
      !reader.ReadU64(&stats.query.candidates_scored) ||
      !reader.ReadU64(&stats.query.candidates_total) ||
      !reader.ReadF64(&stats.query.extract_ms) ||
      !reader.ReadF64(&stats.query.select_ms) ||
      !reader.ReadF64(&stats.query.rank_ms)) {
    return Truncated("stats response");
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after stats response");
  }
  return stats;
}

Status SendFrame(int fd, MessageType type,
                 const std::vector<uint8_t>& payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload too large");
  }
  std::vector<uint8_t> frame;
  frame.reserve(5 + payload.size());
  PutLe<uint32_t>(&frame, static_cast<uint32_t>(payload.size()));
  PutU8(&frame, static_cast<uint8_t>(type));
  frame.insert(frame.end(), payload.begin(), payload.end());

  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StringPrintf("send failed: %s",
                                          std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

namespace {

Status RecvAll(int fd, void* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    const ssize_t r =
        ::recv(fd, static_cast<uint8_t*>(buf) + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StringPrintf("recv failed: %s",
                                          std::strerror(errno)));
    }
    if (r == 0) {
      return Status::IOError("connection closed mid-frame");
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

Result<Frame> RecvFrame(int fd) {
  uint8_t header[5];
  VR_RETURN_NOT_OK(RecvAll(fd, header, sizeof(header)));
  uint32_t len = 0;
  for (size_t i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(header[i]) << (8 * i);
  }
  if (len > kMaxFramePayload) {
    return Status::Corruption("oversized wire frame");
  }
  Frame frame;
  frame.type = static_cast<MessageType>(header[4]);
  frame.payload.resize(len);
  if (len > 0) {
    VR_RETURN_NOT_OK(RecvAll(fd, frame.payload.data(), len));
  }
  return frame;
}

}  // namespace vr
