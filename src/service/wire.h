/// \file wire.h
/// \brief Length-prefixed binary wire protocol for VrServer/VrClient.
///
/// Frame layout (all integers little-endian):
///
///   u32 payload_length | u8 message_type | payload bytes
///
/// Message payloads:
///   kQueryRequest:   u8 mode | u8 feature | u32 k | u64 deadline_ms |
///                    u16 width | u16 height | u8 channels |
///                    width*height*channels pixel bytes
///   kQueryResponse:  u8 status_code | u32 msg_len | msg bytes |
///                    u64 candidates | u64 total | u32 n_results |
///                    n * (i64 i_id | i64 v_id | f64 score)
///   kStatsRequest:   (empty)
///   kStatsResponse:  u8 status_code=0 | 6 * u64 counters (received,
///                    served, rejected, expired, failed, in_flight) |
///                    u64 latency_count | 3 * f64 (p50, p95, p99 ms) |
///                    5 * u64 pager stats (fetches, hits, misses,
///                    evictions, checksum_failures) |
///                    3 * u64 ingest counters (videos_ingested,
///                    frames_decoded, keyframes_kept) |
///                    3 * f64 ingest times (decode, extract, commit ms) |
///                    u32 n_extractors | n * f64 per-extractor ms
///                    (FeatureKind enum order) |
///                    5 * u64 query counters (image_queries,
///                    video_queries, sharded_ranks, candidates_scored,
///                    candidates_total) |
///                    3 * f64 query times (extract, select, rank ms)
///   kShutdownRequest: (empty)
///   kShutdownResponse: u8 status_code=0
///
/// Per-feature distances of QueryResult are not shipped — the wire
/// carries (i_id, v_id, score) triples, which is what remote ranking
/// consumers need. Frames above kMaxFramePayload are rejected.

#pragma once

#include <cstdint>
#include <vector>

#include "service/service.h"
#include "service/stats.h"

namespace vr {

enum class MessageType : uint8_t {
  kQueryRequest = 1,
  kQueryResponse = 2,
  kStatsRequest = 3,
  kStatsResponse = 4,
  kShutdownRequest = 5,
  kShutdownResponse = 6,
};

/// Largest accepted frame payload (a query image plus headroom).
inline constexpr size_t kMaxFramePayload = 64u << 20;

/// \name Message payload codecs.
/// @{
std::vector<uint8_t> EncodeQueryRequest(const ServiceRequest& request);
Result<ServiceRequest> DecodeQueryRequest(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeQueryResponse(const ServiceResponse& response);
Result<ServiceResponse> DecodeQueryResponse(
    const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeStatsResponse(const ServiceStatsSnapshot& stats);
Result<ServiceStatsSnapshot> DecodeStatsResponse(
    const std::vector<uint8_t>& payload);
/// @}

/// One decoded frame.
struct Frame {
  MessageType type;
  std::vector<uint8_t> payload;
};

/// \name Blocking frame I/O over a connected socket fd.
/// Full-message semantics: partial sends/reads are retried until the
/// frame completes; a peer close mid-frame is an IOError.
/// @{
Status SendFrame(int fd, MessageType type,
                 const std::vector<uint8_t>& payload);
Result<Frame> RecvFrame(int fd);
/// @}

}  // namespace vr
