/// \file wire.h
/// \brief Length-prefixed, checksummed binary wire protocol for
/// VrServer/VrClient.
///
/// Frame layout (all integers little-endian):
///
///   u32 payload_length | u8 type_byte | [u32 checksum] | payload bytes
///
/// The type byte packs the MessageType in its low 6 bits; the two high
/// bits are the *checksummed* marker (both set = checksummed frame,
/// both clear = legacy frame, mixed = corruption — two bits so no
/// single bit flip can disguise a checksummed frame as a legacy one).
/// When the marker is set, a u32 frame checksum (a folded 64-bit
/// FNV-1a over the message type then the payload) precedes the
/// payload, and the receiver verifies it — a mismatch is kCorruption,
/// never a silently-accepted frame. Decoding is version-tolerant: the
/// encoder always writes checksummed frames, but a legacy frame from
/// an older peer is still accepted.
///
/// Message payloads:
///   kQueryRequest:   u64 request_id | u8 mode | u8 feature | u32 k |
///                    u64 deadline_ms | body by mode:
///                      mode 0/1 (image): u16 width | u16 height |
///                        u8 channels | width*height*channels pixel bytes
///                      mode 2 (by stored id): i64 frame_id (no image)
///   kQueryResponse:  u64 request_id | u8 status_code | u32 msg_len |
///                    msg bytes | u64 candidates | u64 total |
///                    u32 n_results | n * (i64 i_id | i64 v_id | f64 score)
///   kStatsRequest:   (empty)
///   kStatsResponse:  u8 status_code=0 | 7 * u64 counters (received,
///                    served, rejected, expired, failed, degraded,
///                    in_flight) |
///                    u64 latency_count | 3 * f64 (p50, p95, p99 ms) |
///                    5 * u64 pager stats (fetches, hits, misses,
///                    evictions, checksum_failures) |
///                    3 * u64 ingest counters (videos_ingested,
///                    frames_decoded, keyframes_kept) |
///                    3 * f64 ingest times (decode, extract, commit ms) |
///                    u32 n_extractors | n * f64 per-extractor ms
///                    (FeatureKind enum order) |
///                    10 * u64 query counters (image_queries,
///                    video_queries, sharded_ranks, candidates_scored,
///                    candidates_total, id_queries, cache_hits,
///                    cache_misses, two_stage_queries,
///                    coarse_candidates) |
///                    3 * f64 query times (extract, select, rank ms) |
///                    optional tail: 2 * u64 (two_stage_fallbacks,
///                    margin_kept) — absent from peers predating the
///                    code-space coarse kernels; decoders leave the
///                    counters zero when the payload ends early, and
///                    reject a partial tail as corruption
///   kShutdownRequest: (empty)
///   kShutdownResponse: u8 status_code=0
///   kErrorResponse:  u8 status_code | u32 msg_len | msg bytes
///                    (a typed transport-level rejection — oversized
///                    frame, draining server, connection cap, unknown
///                    message type — sent in place of the RPC-specific
///                    response)
///
/// A query response with status kPartialResult carries ranked results
/// like an OK response; the status message summarizes the quarantined
/// tables (the degraded-read contract in DESIGN.md).
///
/// Per-feature distances of QueryResult are not shipped — the wire
/// carries (i_id, v_id, score) triples, which is what remote ranking
/// consumers need. Frames above kMaxFramePayload are rejected.

#pragma once

#include <cstdint>
#include <vector>

#include "service/service.h"
#include "service/stats.h"
#include "service/transport.h"

namespace vr {

enum class MessageType : uint8_t {
  kQueryRequest = 1,
  kQueryResponse = 2,
  kStatsRequest = 3,
  kStatsResponse = 4,
  kShutdownRequest = 5,
  kShutdownResponse = 6,
  kErrorResponse = 7,
};

/// Largest accepted frame payload (a query image plus headroom).
inline constexpr size_t kMaxFramePayload = 64u << 20;

/// Largest MessageType value; frames with a higher type are rejected.
inline constexpr uint8_t kMaxMessageType =
    static_cast<uint8_t>(MessageType::kErrorResponse);

/// Frame checksum: 64-bit FNV-1a over the message type byte then the
/// payload, folded to 32 bits.
uint32_t FrameChecksum(MessageType type, const uint8_t* payload, size_t len);

/// \name Message payload codecs.
/// @{
std::vector<uint8_t> EncodeQueryRequest(const ServiceRequest& request);
Result<ServiceRequest> DecodeQueryRequest(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeQueryResponse(const ServiceResponse& response);
Result<ServiceResponse> DecodeQueryResponse(
    const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeStatsResponse(const ServiceStatsSnapshot& stats);
Result<ServiceStatsSnapshot> DecodeStatsResponse(
    const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeErrorResponse(const Status& status);
/// Decodes an error-response payload. Returns OK with \p out set to the
/// (always non-OK) transported status, or the decode failure itself.
Status DecodeErrorResponse(const std::vector<uint8_t>& payload, Status* out);
/// @}

/// One decoded frame.
struct Frame {
  MessageType type;
  std::vector<uint8_t> payload;
};

/// \brief Resumable frame write.
///
/// Encodes the full frame up front; Resume pushes the remaining bytes
/// through the transport, and a kDeadlineExceeded mid-frame leaves the
/// sender positioned to continue on the next call — the connection is
/// never desynchronized by a timeout between two Sends. Any other error
/// is fatal to the connection.
class FrameSender {
 public:
  FrameSender(MessageType type, const std::vector<uint8_t>& payload);

  /// Sends remaining bytes until done or the deadline expires.
  /// Returns OK when the frame is fully sent, kDeadlineExceeded when
  /// more remains (call Resume again), or the transport's error.
  Status Resume(Transport* transport, TransportDeadline deadline);

  bool done() const { return offset_ == frame_.size(); }
  size_t bytes_sent() const { return offset_; }

 private:
  std::vector<uint8_t> frame_;
  size_t offset_ = 0;
};

/// \name Frame I/O over a Transport.
/// Full-message semantics: partial sends/reads are retried until the
/// frame completes or the deadline expires; a peer close mid-frame is
/// an IOError, an oversized length or checksum mismatch kCorruption.
/// @{
Status SendFrame(Transport* transport, MessageType type,
                 const std::vector<uint8_t>& payload,
                 TransportDeadline deadline = kNoDeadline);
Result<Frame> RecvFrame(Transport* transport,
                        TransportDeadline deadline = kNoDeadline,
                        size_t max_payload = kMaxFramePayload);
/// @}

}  // namespace vr
