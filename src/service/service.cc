#include "service/service.h"

#include <algorithm>
#include <utility>

namespace vr {

RetrievalService::RetrievalService(RetrievalEngine* engine,
                                   ServiceOptions options)
    : engine_(engine), options_(std::move(options)) {
  // Quarantined tables are fixed at engine-open time, so the damage
  // summary attached to every degraded response is built once here.
  const std::vector<TableDamage>& damage = engine_->DamageReport();
  if (!damage.empty()) {
    damage_summary_ = std::to_string(damage.size()) +
                      " table(s) quarantined:";
    for (const TableDamage& d : damage) {
      damage_summary_ += " " + d.table + " (" + d.reason.ToString() + ");";
    }
    damage_summary_.pop_back();  // trailing ';'
  }
  options_.num_workers = std::max<size_t>(1, options_.num_workers);
  capacity_ = options_.num_workers + options_.max_backlog;
  ThreadPoolOptions pool_options;
  pool_options.num_threads = options_.num_workers;
  // The pool queue never needs to reject on its own: admission control
  // happens before TrySubmit, so capacity_ slots always fit.
  pool_options.queue_capacity = capacity_;
  pool_ = std::make_unique<ThreadPool>(pool_options);
}

RetrievalService::~RetrievalService() { Shutdown(); }

std::future<ServiceResponse> RetrievalService::Submit(ServiceRequest request) {
  auto promise = std::make_shared<std::promise<ServiceResponse>>();
  std::future<ServiceResponse> future = promise->get_future();
  received_.fetch_add(1, std::memory_order_relaxed);

  auto reject = [&](const char* why) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    ServiceResponse response;
    response.status = Status::Unavailable(why);
    promise->set_value(std::move(response));
    return std::move(future);
  };

  if (!accepting_.load(std::memory_order_acquire)) {
    return reject("service is shutting down");
  }
  // Claim an admission slot; overload is refused deterministically
  // instead of queueing without bound.
  const uint64_t slot = in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (slot >= capacity_) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    return reject("service overloaded (admission capacity reached)");
  }

  const Clock::time_point admitted = Clock::now();
  const uint64_t budget_ms = request.deadline_ms != 0
                                 ? request.deadline_ms
                                 : options_.default_deadline_ms;
  const Clock::time_point deadline =
      budget_ms != 0 ? admitted + std::chrono::milliseconds(budget_ms)
                     : Clock::time_point::max();

  const bool enqueued = pool_->TrySubmit(
      [this, promise, request = std::move(request), admitted, deadline]() mutable {
        Execute(promise, std::move(request), admitted, deadline);
      });
  if (!enqueued) {
    // Shutdown raced the admission check (or the pool rejected): the
    // slot is released and the caller sees the same kUnavailable as an
    // admission refusal.
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    return reject("service queue rejected the request");
  }
  return future;
}

ServiceResponse RetrievalService::Query(ServiceRequest request) {
  return Submit(std::move(request)).get();
}

void RetrievalService::Execute(
    std::shared_ptr<std::promise<ServiceResponse>> promise,
    ServiceRequest request, Clock::time_point admitted,
    Clock::time_point deadline) {
  if (options_.worker_hook) options_.worker_hook();

  ServiceResponse response;
  response.request_id = request.request_id;
  if (Clock::now() >= deadline) {
    // Expired while queued: never touches the engine.
    response.status =
        Status::DeadlineExceeded("deadline expired before execution");
  } else {
    QueryCheckpoint checkpoint;
    if (deadline != Clock::time_point::max()) {
      checkpoint = [deadline]() {
        if (Clock::now() >= deadline) {
          return Status::DeadlineExceeded("request deadline expired");
        }
        return Status::OK();
      };
    }
    Result<std::vector<QueryResult>> ranked =
        request.mode == QueryMode::kById
            ? engine_->QueryByStoredId(request.frame_id, request.k,
                                       checkpoint)
            : request.mode == QueryMode::kSingleFeature
                  ? engine_->QueryByImageSingleFeature(
                        request.image, request.feature, request.k, checkpoint)
                  : engine_->QueryByImage(request.image, request.k,
                                          checkpoint);
    if (ranked.ok()) {
      response.results = std::move(ranked).value();
      response.stats = engine_->last_candidate_stats();
      if (!damage_summary_.empty()) {
        // Degraded read: the ranking succeeded, but over a store with
        // quarantined tables — surface that instead of implying a full
        // answer.
        response.status =
            Status::PartialResult("degraded store: " + damage_summary_);
      }
    } else {
      response.status = ranked.status();
    }
  }

  if (response.status.ok()) {
    served_.fetch_add(1, std::memory_order_relaxed);
  } else if (response.status.IsPartialResult()) {
    served_.fetch_add(1, std::memory_order_relaxed);
    degraded_.fetch_add(1, std::memory_order_relaxed);
  } else if (response.status.IsDeadlineExceeded()) {
    expired_.fetch_add(1, std::memory_order_relaxed);
  } else {
    failed_.fetch_add(1, std::memory_order_relaxed);
  }
  latency_.Record(std::chrono::duration<double, std::milli>(Clock::now() -
                                                            admitted)
                      .count());
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  promise->set_value(std::move(response));
}

ServiceStatsSnapshot RetrievalService::GetStats() const {
  ServiceStatsSnapshot snapshot;
  snapshot.received = received_.load(std::memory_order_relaxed);
  snapshot.served = served_.load(std::memory_order_relaxed);
  snapshot.rejected = rejected_.load(std::memory_order_relaxed);
  snapshot.expired = expired_.load(std::memory_order_relaxed);
  snapshot.failed = failed_.load(std::memory_order_relaxed);
  snapshot.degraded = degraded_.load(std::memory_order_relaxed);
  snapshot.in_flight = in_flight_.load(std::memory_order_relaxed);
  snapshot.latency_count = latency_.Count();
  snapshot.p50_ms = latency_.Percentile(50);
  snapshot.p95_ms = latency_.Percentile(95);
  snapshot.p99_ms = latency_.Percentile(99);
  snapshot.pager = engine_->store()->GetPagerStats();
  snapshot.ingest = engine_->ingest_stats();
  snapshot.query = engine_->query_stats();
  return snapshot;
}

void RetrievalService::Shutdown() {
  accepting_.store(false, std::memory_order_release);
  pool_->Shutdown();
}

}  // namespace vr
