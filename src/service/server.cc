#include "service/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>

#include "service/wire.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace vr {

namespace {

/// Best-effort typed rejection; failure to deliver it is ignored (the
/// connection is being dropped either way).
void SendErrorFrame(Transport* transport, const Status& error,
                    uint64_t write_deadline_ms) {
  (void)SendFrame(transport, MessageType::kErrorResponse,
                  EncodeErrorResponse(error),
                  DeadlineAfterMs(write_deadline_ms));
}

}  // namespace

Result<std::unique_ptr<VrServer>> VrServer::Start(RetrievalService* service,
                                                  ServerOptions options) {
  auto server =
      std::unique_ptr<VrServer>(new VrServer(service, std::move(options)));

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(StringPrintf("socket failed: %s",
                                        std::strerror(errno)));
  }
  server->listen_fd_ = fd;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server->options_.port);
  if (::inet_pton(AF_INET, server->options_.host.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("server host must be an IPv4 address: " +
                                   server->options_.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::IOError(StringPrintf("bind to %s:%u failed: %s",
                                        server->options_.host.c_str(),
                                        server->options_.port,
                                        std::strerror(errno)));
  }
  if (::listen(fd, server->options_.backlog) != 0) {
    return Status::IOError(StringPrintf("listen failed: %s",
                                        std::strerror(errno)));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    return Status::IOError("getsockname failed");
  }
  server->port_ = ntohs(bound.sin_port);

  server->acceptor_ = Thread([raw = server.get()] { raw->AcceptLoop(); });
  VR_LOG(Info) << "VrServer listening on " << server->options_.host << ":"
               << server->port_;
  return server;
}

VrServer::~VrServer() { Stop(); }

std::unique_ptr<Transport> VrServer::MakeTransport(int fd) const {
  if (options_.transport_factory) return options_.transport_factory(fd);
  return SocketTransport::Adopt(fd);
}

void VrServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Stop() shut the listener down (or it failed fatally): exit.
      return;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    std::vector<Thread> reap;
    bool at_capacity = false;
    {
      MutexLock lock(mutex_);
      reap.swap(finished_);
      at_capacity = options_.max_connections > 0 &&
                    connections_.size() >= options_.max_connections;
    }
    for (Thread& t : reap) {
      if (t.joinable()) t.join();
    }

    if (at_capacity) {
      // Reject with a typed error instead of spawning an unbounded
      // handler thread; the client's breaker/backoff takes it from
      // here.
      auto transport = MakeTransport(fd);
      SendErrorFrame(transport.get(),
                     Status::Unavailable("connection limit reached"),
                     options_.write_deadline_ms);
      VR_LOG(Warn) << "VrServer rejecting connection: limit of "
                   << options_.max_connections << " reached";
      continue;
    }

    MutexLock lock(mutex_);
    connections_.push_back(fd);
    const uint64_t id = next_conn_id_++;
    handlers_.emplace(
        id, Thread([this, fd, id] { HandleConnection(fd, id); }));
  }
}

void VrServer::HandleConnection(int fd, uint64_t id) {
  std::unique_ptr<Transport> transport = MakeTransport(fd);
  const size_t max_payload = options_.max_frame_payload > 0
                                 ? options_.max_frame_payload
                                 : kMaxFramePayload;
  bool request_stop = false;
  for (;;) {
    Result<Frame> frame =
        RecvFrame(transport.get(), DeadlineAfterMs(options_.read_deadline_ms),
                  max_payload);
    if (!frame.ok()) {
      const Status& error = frame.status();
      if (error.IsCorruption()) {
        // Malformed framing (oversized length, bad checksum, unknown
        // type): tell the client why before dropping it.
        SendErrorFrame(transport.get(), error, options_.write_deadline_ms);
      } else if (error.IsDeadlineExceeded()) {
        VR_LOG(Warn) << "VrServer evicting slow client (no complete frame "
                     << "within " << options_.read_deadline_ms << " ms)";
        SendErrorFrame(
            transport.get(),
            Status::Unavailable("read deadline exceeded; connection evicted"),
            options_.write_deadline_ms);
      }
      break;  // peer closed, torn frame, or the eviction above
    }
    if (stopping_.load(std::memory_order_acquire)) {
      SendErrorFrame(transport.get(), Status::Unavailable("server draining"),
                     options_.write_deadline_ms);
      break;
    }
    const TransportDeadline write_deadline =
        DeadlineAfterMs(options_.write_deadline_ms);
    Status sent = Status::OK();
    bool drop = false;
    switch (frame->type) {
      case MessageType::kQueryRequest: {
        ServiceResponse response;
        Result<ServiceRequest> request = DecodeQueryRequest(frame->payload);
        if (request.ok()) {
          const uint64_t request_id = request->request_id;
          response = service_->Query(std::move(request).value());
          response.request_id = request_id;
        } else {
          response.status = request.status();
        }
        sent = SendFrame(transport.get(), MessageType::kQueryResponse,
                         EncodeQueryResponse(response), write_deadline);
        break;
      }
      case MessageType::kStatsRequest:
        sent = SendFrame(transport.get(), MessageType::kStatsResponse,
                         EncodeStatsResponse(service_->GetStats()),
                         write_deadline);
        break;
      case MessageType::kShutdownRequest:
        (void)SendFrame(transport.get(), MessageType::kShutdownResponse, {0},
                        write_deadline);
        request_stop = true;
        break;
      default:
        VR_LOG(Warn) << "dropping connection after unexpected message type "
                     << static_cast<int>(frame->type);
        SendErrorFrame(transport.get(),
                       Status::InvalidArgument("unexpected message type"),
                       options_.write_deadline_ms);
        drop = true;
        break;
    }
    if (request_stop || drop || !sent.ok()) break;
  }
  // Deregister before closing so Stop() never shutdown(2)s a recycled
  // fd number belonging to someone else, and hand our own thread
  // handle to the acceptor's reap list (Stop may already have taken
  // it, hence the guarded find).
  {
    MutexLock lock(mutex_);
    connections_.erase(
        std::remove(connections_.begin(), connections_.end(), fd),
        connections_.end());
    auto it = handlers_.find(id);
    if (it != handlers_.end()) {
      finished_.push_back(std::move(it->second));
      handlers_.erase(it);
    }
    if (request_stop) stop_requested_ = true;
  }
  transport.reset();  // closes the fd
  // Wake Wait() (shutdown RPC) and the drain wait in Stop(). The
  // waiter performs the actual Stop so no handler ever joins itself.
  stopped_cv_.NotifyAll();
}

void VrServer::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    // Another caller is stopping; wait for it to finish.
    MutexLock lock(mutex_);
    while (!stopped_) {
      stopped_cv_.Wait(mutex_);
    }
    return;
  }
  // Unblock accept(2).
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);

  // Graceful drain: half-close the read side so idle connections see
  // EOF and handlers mid-request still write their response; handlers
  // refuse any further request (stopping_ is set). Then wait for the
  // connections to finish, bounded by drain_timeout_ms.
  std::map<uint64_t, Thread> handlers;
  std::vector<Thread> finished;
  {
    MutexLock lock(mutex_);
    for (int fd : connections_) ::shutdown(fd, SHUT_RD);
    const auto drain_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options_.drain_timeout_ms);
    while (!connections_.empty()) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= drain_deadline) {
        VR_LOG(Warn) << "VrServer drain timed out with "
                     << connections_.size()
                     << " connection(s); force-closing";
        break;
      }
      stopped_cv_.WaitFor(
          mutex_, std::chrono::duration_cast<std::chrono::milliseconds>(
                      drain_deadline - now));
    }
    // Stragglers (or drain_timeout_ms == 0): unblock both directions.
    for (int fd : connections_) ::shutdown(fd, SHUT_RDWR);
    handlers.swap(handlers_);
    finished.swap(finished_);
  }
  for (auto& [id, t] : handlers) {
    if (t.joinable()) t.join();
  }
  for (Thread& t : finished) {
    if (t.joinable()) t.join();
  }
  VR_LOG(Info) << "VrServer stopped";
  {
    MutexLock lock(mutex_);
    stopped_ = true;
    stop_requested_ = true;
  }
  stopped_cv_.NotifyAll();
}

void VrServer::Wait() {
  MutexLock lock(mutex_);
  while (!stop_requested_ && !stopped_) {
    stopped_cv_.Wait(mutex_);
  }
}

}  // namespace vr
