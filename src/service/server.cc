#include "service/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "service/wire.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace vr {

Result<std::unique_ptr<VrServer>> VrServer::Start(RetrievalService* service,
                                                  ServerOptions options) {
  auto server =
      std::unique_ptr<VrServer>(new VrServer(service, std::move(options)));

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(StringPrintf("socket failed: %s",
                                        std::strerror(errno)));
  }
  server->listen_fd_ = fd;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server->options_.port);
  if (::inet_pton(AF_INET, server->options_.host.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("server host must be an IPv4 address: " +
                                   server->options_.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::IOError(StringPrintf("bind to %s:%u failed: %s",
                                        server->options_.host.c_str(),
                                        server->options_.port,
                                        std::strerror(errno)));
  }
  if (::listen(fd, server->options_.backlog) != 0) {
    return Status::IOError(StringPrintf("listen failed: %s",
                                        std::strerror(errno)));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    return Status::IOError("getsockname failed");
  }
  server->port_ = ntohs(bound.sin_port);

  server->acceptor_ = std::thread([raw = server.get()] { raw->AcceptLoop(); });
  VR_LOG(Info) << "VrServer listening on " << server->options_.host << ":"
               << server->port_;
  return server;
}

VrServer::~VrServer() { Stop(); }

void VrServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Stop() shut the listener down (or it failed fatally): exit.
      return;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    MutexLock lock(mutex_);
    connections_.push_back(fd);
    handlers_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void VrServer::HandleConnection(int fd) {
  bool request_stop = false;
  for (;;) {
    Result<Frame> frame = RecvFrame(fd);
    if (!frame.ok()) break;  // peer closed or malformed framing
    Status sent = Status::OK();
    switch (frame->type) {
      case MessageType::kQueryRequest: {
        ServiceResponse response;
        Result<ServiceRequest> request = DecodeQueryRequest(frame->payload);
        if (request.ok()) {
          response = service_->Query(std::move(request).value());
        } else {
          response.status = request.status();
        }
        sent = SendFrame(fd, MessageType::kQueryResponse,
                         EncodeQueryResponse(response));
        break;
      }
      case MessageType::kStatsRequest:
        sent = SendFrame(fd, MessageType::kStatsResponse,
                         EncodeStatsResponse(service_->GetStats()));
        break;
      case MessageType::kShutdownRequest:
        (void)SendFrame(fd, MessageType::kShutdownResponse, {0});
        request_stop = true;
        break;
      default:
        VR_LOG(Warn) << "dropping connection after unknown message type "
                     << static_cast<int>(frame->type);
        sent = Status::IOError("unknown message type");
        break;
    }
    if (request_stop || !sent.ok()) break;
  }
  // Deregister before closing so Stop() never shutdown(2)s a recycled
  // fd number belonging to someone else.
  {
    MutexLock lock(mutex_);
    connections_.erase(
        std::remove(connections_.begin(), connections_.end(), fd),
        connections_.end());
    if (request_stop) stop_requested_ = true;
  }
  ::close(fd);
  if (request_stop) {
    // Wake Wait(); the waiter (serve_cli / tests) performs the actual
    // Stop so no handler ever joins itself.
    stopped_cv_.NotifyAll();
  }
}

void VrServer::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    // Another caller is stopping; wait for it to finish.
    MutexLock lock(mutex_);
    while (!stopped_) {
      stopped_cv_.Wait(mutex_);
    }
    return;
  }
  // Unblock accept(2).
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);

  // Unblock in-flight recv(2) calls and join the handlers.
  std::vector<std::thread> handlers;
  {
    MutexLock lock(mutex_);
    for (int fd : connections_) ::shutdown(fd, SHUT_RDWR);
    handlers.swap(handlers_);
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
  VR_LOG(Info) << "VrServer stopped";
  {
    MutexLock lock(mutex_);
    stopped_ = true;
    stop_requested_ = true;
  }
  stopped_cv_.NotifyAll();
}

void VrServer::Wait() {
  MutexLock lock(mutex_);
  while (!stop_requested_ && !stopped_) {
    stopped_cv_.Wait(mutex_);
  }
}

}  // namespace vr
