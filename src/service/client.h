/// \file client.h
/// \brief VrClient: blocking TCP client for the VrServer wire protocol.
///
/// Usage:
///   VR_ASSIGN_OR_RETURN(auto client, VrClient::Connect("127.0.0.1", port));
///   VR_ASSIGN_OR_RETURN(ServiceResponse r, client->Query(image, 10));
///
/// Thread-safety: a VrClient is a single connection with blocking
/// request/response framing — use one instance per thread (or guard it
/// externally). Connect/Close are safe to pair from one owner thread.

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "service/service.h"
#include "service/stats.h"

namespace vr {

/// \brief One blocking connection speaking the wire.h protocol.
class VrClient {
 public:
  /// Connects to an IPv4 \p host and \p port.
  static Result<std::unique_ptr<VrClient>> Connect(const std::string& host,
                                                   uint16_t port);
  ~VrClient();
  VrClient(const VrClient&) = delete;
  VrClient& operator=(const VrClient&) = delete;

  /// Round-trips one query-by-frame RPC. The returned ServiceResponse
  /// carries the server-side status (e.g. kUnavailable on overload,
  /// kDeadlineExceeded on expiry); a non-OK Result means the transport
  /// itself failed.
  Result<ServiceResponse> Query(const Image& image, size_t k,
                                QueryMode mode = QueryMode::kCombined,
                                FeatureKind feature = FeatureKind::kColorHistogram,
                                uint64_t deadline_ms = 0);

  /// Fetches the service stats snapshot.
  Result<ServiceStatsSnapshot> GetStats();

  /// Asks the server to shut down cleanly; returns once acknowledged.
  Status Shutdown();

  /// Closes the connection; further RPCs fail. Idempotent.
  void Close();

 private:
  explicit VrClient(int fd) : fd_(fd) {}

  int fd_ = -1;
};

}  // namespace vr
