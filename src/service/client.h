/// \file client.h
/// \brief VrClient: resilient TCP client for the VrServer wire protocol.
///
/// Usage:
///   VR_ASSIGN_OR_RETURN(auto client, VrClient::Connect("127.0.0.1", port));
///   VR_ASSIGN_OR_RETURN(ServiceResponse r, client->Query(image, 10));
///
/// Every RPC runs under a deadline (connect and overall per-attempt
/// timeouts from ClientOptions) and, for idempotent RPCs (Query,
/// GetStats), a RetryPolicy: on a retryable failure the client closes
/// the broken connection, backs off with deterministic jitter,
/// reconnects and retries — so a single connection reset is invisible
/// to the caller. Shutdown is not idempotent and is never retried.
/// A CircuitBreaker fails fast (kUnavailable) after a run of
/// consecutive failures instead of hammering a dead server.
///
/// Thread-safety: a VrClient is a single connection with blocking
/// request/response framing — use one instance per thread (or guard it
/// externally). Connect/Close are safe to pair from one owner thread.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "service/retry.h"
#include "service/service.h"
#include "service/stats.h"
#include "service/transport.h"
#include "service/wire.h"
#include "util/rng.h"

namespace vr {

/// Timeouts, retry and breaker tuning for a VrClient.
struct ClientOptions {
  /// TCP connect timeout per attempt in ms; 0 = no limit.
  uint64_t connect_timeout_ms = 2000;
  /// Overall budget for one RPC attempt (send + receive) in ms;
  /// 0 = no limit.
  uint64_t rpc_timeout_ms = 10000;
  RetryPolicy retry;
  CircuitBreakerOptions breaker;
  /// Seed of the jitter source; equal seeds give equal backoff
  /// schedules.
  uint64_t jitter_seed = 0x5EEDBACC;
  /// Test hook wrapping every transport the client creates (e.g. in a
  /// FaultInjectionTransport). Leave unset in production.
  std::function<std::unique_ptr<Transport>(std::unique_ptr<Transport>)>
      transport_hook;
};

/// \brief One logical connection speaking the wire.h protocol, with
/// timeouts, idempotent-RPC retries and a circuit breaker.
class VrClient {
 public:
  /// Connects to an IPv4 \p host and \p port with default options.
  static Result<std::unique_ptr<VrClient>> Connect(const std::string& host,
                                                   uint16_t port);
  /// Connects with explicit \p options.
  static Result<std::unique_ptr<VrClient>> Connect(const std::string& host,
                                                   uint16_t port,
                                                   ClientOptions options);
  ~VrClient();
  VrClient(const VrClient&) = delete;
  VrClient& operator=(const VrClient&) = delete;

  /// Round-trips one query-by-frame RPC. The returned ServiceResponse
  /// carries the server-side status (e.g. kUnavailable on overload,
  /// kDeadlineExceeded on expiry, kPartialResult over a degraded
  /// store); a non-OK Result means the RPC itself failed after retries.
  Result<ServiceResponse> Query(const Image& image, size_t k,
                                QueryMode mode = QueryMode::kCombined,
                                FeatureKind feature = FeatureKind::kColorHistogram,
                                uint64_t deadline_ms = 0);

  /// Round-trips one query-by-stored-id RPC: the server ranks against
  /// the features already stored for key frame \p frame_id (no image
  /// crosses the wire, no extraction runs). Idempotent, retried.
  Result<ServiceResponse> QueryById(int64_t frame_id, size_t k,
                                    uint64_t deadline_ms = 0);

  /// Fetches the service stats snapshot (idempotent, retried).
  Result<ServiceStatsSnapshot> GetStats();

  /// Asks the server to shut down cleanly; returns once acknowledged.
  /// Not idempotent: never retried (a lost ack must not stop the
  /// server twice).
  Status Shutdown();

  /// Closes the connection; the next RPC reconnects. Idempotent.
  void Close();

  CircuitBreaker::State breaker_state() const { return breaker_.state(); }
  const ClientOptions& options() const { return options_; }

 private:
  VrClient(std::string host, uint16_t port, ClientOptions options)
      : host_(std::move(host)),
        port_(port),
        options_(std::move(options)),
        rng_(options_.jitter_seed),
        breaker_(options_.breaker) {}

  /// (Re)establishes transport_ if absent.
  Status EnsureConnected(TransportDeadline deadline);

  /// One send/receive attempt; no retries.
  Result<Frame> AttemptRpc(MessageType type,
                           const std::vector<uint8_t>& payload,
                           MessageType want, TransportDeadline deadline);

  /// Full RPC with breaker, per-attempt deadlines and (when
  /// \p idempotent) the retry loop.
  Result<Frame> DoRpc(MessageType type, const std::vector<uint8_t>& payload,
                      MessageType want, bool idempotent);

  std::string host_;
  uint16_t port_ = 0;
  ClientOptions options_;
  Rng rng_;
  CircuitBreaker breaker_;
  std::unique_ptr<Transport> transport_;
  uint64_t next_request_id_ = 1;
};

}  // namespace vr
