/// \file server.h
/// \brief VrServer: hardened TCP front-end for a RetrievalService.
///
/// Serves the wire protocol of wire.h: query-by-frame (combined or
/// single-feature scoring, top-k), a stats RPC, and a clean shutdown
/// RPC. One acceptor thread plus one handler thread per connection;
/// concurrency of query execution itself is governed by the service's
/// worker pool (connection handlers block on the service future).
///
/// Hardening (all tunable via ServerOptions):
///  - concurrent connections are capped; excess clients get a typed
///    kUnavailable error frame instead of an unbounded handler thread;
///  - malformed or oversized frames get a typed kErrorResponse
///    (kCorruption) before the connection is dropped — never a silent
///    hang;
///  - per-connection read deadlines evict clients that stall mid-frame,
///    and write deadlines evict clients that stop reading responses;
///  - Stop() drains gracefully: in-flight requests finish (bounded by
///    drain_timeout_ms), new requests are refused with kUnavailable.
///
/// Thread-safety: Start/Stop/Wait/port are safe from any thread.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "service/service.h"
#include "service/transport.h"
#include "util/mutex.h"
#include "util/thread.h"
#include "util/thread_annotations.h"

namespace vr {

/// Listener configuration.
struct ServerOptions {
  /// Listen address; the default only accepts local clients.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// listen(2) backlog.
  int backlog = 16;
  /// Concurrent connection cap; excess clients are rejected with a
  /// typed kUnavailable error frame. 0 = unlimited.
  size_t max_connections = 64;
  /// A client that sends no complete frame within this window is
  /// evicted (slow-loris defense). 0 = no deadline.
  uint64_t read_deadline_ms = 30000;
  /// A client that does not drain a response within this window is
  /// evicted. 0 = no deadline.
  uint64_t write_deadline_ms = 10000;
  /// How long Stop() waits for in-flight connections to finish before
  /// force-closing them. 0 = no grace period.
  uint64_t drain_timeout_ms = 2000;
  /// Per-frame payload cap; larger frames are rejected as kCorruption.
  /// 0 = the wire default (kMaxFramePayload).
  size_t max_frame_payload = 0;
  /// Test hook building the per-connection transport from the accepted
  /// fd (e.g. wrapping it in a FaultInjectionTransport). Takes
  /// ownership of the fd. Leave unset in production
  /// (SocketTransport::Adopt).
  std::function<std::unique_ptr<Transport>(int fd)> transport_factory;
};

/// \brief Accepts connections and speaks the binary query protocol.
class VrServer {
 public:
  /// Binds and starts the acceptor thread. \p service must outlive the
  /// server.
  static Result<std::unique_ptr<VrServer>> Start(RetrievalService* service,
                                                 ServerOptions options = {});
  ~VrServer();
  VrServer(const VrServer&) = delete;
  VrServer& operator=(const VrServer&) = delete;

  /// The bound port (resolves ephemeral port 0).
  uint16_t port() const { return port_; }

  /// Stops accepting, drains in-flight connections (bounded by
  /// drain_timeout_ms), unblocks stragglers, joins all threads.
  /// Idempotent; also run by the destructor.
  void Stop() EXCLUDES(mutex_);

  /// Blocks until Stop() runs or a client issues the shutdown RPC.
  /// After a shutdown RPC the caller still owns the teardown: call
  /// Stop() (or let the destructor do it) once Wait returns.
  void Wait() EXCLUDES(mutex_);

 private:
  VrServer(RetrievalService* service, ServerOptions options)
      : service_(service), options_(std::move(options)) {}

  void AcceptLoop() EXCLUDES(mutex_);
  void HandleConnection(int fd, uint64_t id) EXCLUDES(mutex_);
  std::unique_ptr<Transport> MakeTransport(int fd) const;

  // service_, options_, listen_fd_ and port_ are set before the
  // acceptor thread starts and immutable afterwards.
  RetrievalService* service_;
  ServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;

  std::atomic<bool> stopping_{false};
  Mutex mutex_{LockLevel::kServer, "server_registry"};
  /// Signals "stop_requested_ or stopped_ flipped, or a connection
  /// finished" (the drain wait in Stop watches the latter).
  CondVar stopped_cv_;
  bool stop_requested_ GUARDED_BY(mutex_) = false;  ///< client shutdown RPC
  bool stopped_ GUARDED_BY(mutex_) = false;         ///< Stop() completed
  /// Open connection fds, so Stop() can shutdown(2) blocked readers.
  std::vector<int> connections_ GUARDED_BY(mutex_);
  /// Live handler threads keyed by connection serial. A handler moves
  /// its own entry to finished_ on exit; the acceptor reaps finished_
  /// so long-lived servers do not accumulate joined-out threads.
  std::map<uint64_t, Thread> handlers_ GUARDED_BY(mutex_);
  std::vector<Thread> finished_ GUARDED_BY(mutex_);
  uint64_t next_conn_id_ GUARDED_BY(mutex_) = 0;
  Thread acceptor_;
};

}  // namespace vr
