/// \file server.h
/// \brief VrServer: blocking TCP front-end for a RetrievalService.
///
/// Serves the wire protocol of wire.h: query-by-frame (combined or
/// single-feature scoring, top-k), a stats RPC, and a clean shutdown
/// RPC. One acceptor thread plus one handler thread per connection;
/// concurrency of query execution itself is governed by the service's
/// worker pool (connection handlers block on the service future).
///
/// Thread-safety: Start/Stop/Wait/port are safe from any thread.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/service.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace vr {

/// Listener configuration.
struct ServerOptions {
  /// Listen address; the default only accepts local clients.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// listen(2) backlog.
  int backlog = 16;
};

/// \brief Accepts connections and speaks the binary query protocol.
class VrServer {
 public:
  /// Binds and starts the acceptor thread. \p service must outlive the
  /// server.
  static Result<std::unique_ptr<VrServer>> Start(RetrievalService* service,
                                                 ServerOptions options = {});
  ~VrServer();
  VrServer(const VrServer&) = delete;
  VrServer& operator=(const VrServer&) = delete;

  /// The bound port (resolves ephemeral port 0).
  uint16_t port() const { return port_; }

  /// Stops accepting, unblocks in-flight connection reads, joins all
  /// threads. Idempotent; also run by the destructor.
  void Stop() EXCLUDES(mutex_);

  /// Blocks until Stop() runs or a client issues the shutdown RPC.
  /// After a shutdown RPC the caller still owns the teardown: call
  /// Stop() (or let the destructor do it) once Wait returns.
  void Wait() EXCLUDES(mutex_);

 private:
  VrServer(RetrievalService* service, ServerOptions options)
      : service_(service), options_(std::move(options)) {}

  void AcceptLoop() EXCLUDES(mutex_);
  void HandleConnection(int fd) EXCLUDES(mutex_);

  // service_, options_, listen_fd_ and port_ are set before the
  // acceptor thread starts and immutable afterwards.
  RetrievalService* service_;
  ServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;

  std::atomic<bool> stopping_{false};
  Mutex mutex_;
  /// Signals "stop_requested_ or stopped_ flipped".
  CondVar stopped_cv_;
  bool stop_requested_ GUARDED_BY(mutex_) = false;  ///< client shutdown RPC
  bool stopped_ GUARDED_BY(mutex_) = false;         ///< Stop() completed
  /// Open connection fds, so Stop() can shutdown(2) blocked readers.
  std::vector<int> connections_ GUARDED_BY(mutex_);
  std::vector<std::thread> handlers_ GUARDED_BY(mutex_);
  std::thread acceptor_;
};

}  // namespace vr
