/// \file fault_injection_transport.h
/// \brief Transport wrapper that injects deterministic network faults.
///
/// The network-side counterpart of FaultInjectionEnv: where that double
/// fails writes and cuts power under the storage engine, this one sits
/// between the wire codecs and a real (or in-memory) Transport and
/// injects the failure modes a retrieval service sees in production —
/// connection resets, torn frames, flipped bytes, stalls. Every fault
/// is drawn from a seeded vr::Rng, so a chaos-test schedule replays
/// bit-for-bit from its seed.
///
/// Fault selection: each Send/Recv makes exactly one UniformDouble draw
/// and tests it against the cumulative probability bands (reset, then
/// truncate, then corrupt, then stall). At most one fault fires per
/// operation, and the draw sequence — hence the schedule — depends only
/// on the seed and the operation order.

#pragma once

#include <cstdint>
#include <memory>

#include "service/transport.h"
#include "util/rng.h"

namespace vr {

/// \brief Probabilities and seed for one fault schedule.
struct TransportFaultOptions {
  /// Seed for the schedule; equal seeds give equal fault sequences.
  uint64_t seed = 1;
  /// Probability an operation kills the connection (IOError, inner
  /// transport closed — subsequent operations fail too).
  double reset_prob = 0.0;
  /// Probability a Send forwards only a prefix and then reports the
  /// connection dead (a torn frame on the peer's side).
  double truncate_prob = 0.0;
  /// Probability one bit of the operation's payload is flipped while
  /// the operation itself "succeeds" (silent wire corruption).
  double corrupt_prob = 0.0;
  /// Probability the operation is delayed by stall_ms first.
  double stall_prob = 0.0;
  uint64_t stall_ms = 2;
};

/// \brief Wraps a Transport and injects faults per TransportFaultOptions.
///
/// Also exposes FailNthSend/FailNthRecv one-shot counters (1-based,
/// 0 disables) mirroring FaultInjectionEnv::FailNthWrite, for tests
/// that need one precisely-placed fault instead of a probabilistic
/// schedule.
class FaultInjectionTransport : public Transport {
 public:
  FaultInjectionTransport(std::unique_ptr<Transport> inner,
                          const TransportFaultOptions& options)
      : inner_(std::move(inner)), options_(options), rng_(options.seed) {}

  Result<size_t> Send(const uint8_t* data, size_t len,
                      TransportDeadline deadline) override;
  Result<size_t> Recv(uint8_t* buf, size_t len,
                      TransportDeadline deadline) override;
  void Close() override;

  /// Fails the Nth Send from now with an injected reset; 0 disables.
  void FailNthSend(uint64_t n) {
    fail_send_at_ = n == 0 ? 0 : sends_ + n;
  }
  /// Fails the Nth Recv from now with an injected reset; 0 disables.
  void FailNthRecv(uint64_t n) {
    fail_recv_at_ = n == 0 ? 0 : recvs_ + n;
  }

  uint64_t sends() const { return sends_; }
  uint64_t recvs() const { return recvs_; }
  uint64_t resets() const { return resets_; }
  uint64_t corruptions() const { return corruptions_; }
  uint64_t stalls() const { return stalls_; }

 private:
  enum class Fault { kNone, kReset, kTruncate, kCorrupt, kStall };

  /// One scheduled draw; \p for_send enables kTruncate.
  Fault DrawFault(bool for_send);
  Status InjectReset();

  std::unique_ptr<Transport> inner_;
  TransportFaultOptions options_;
  Rng rng_;
  bool dead_ = false;  ///< a reset fired; connection is gone
  uint64_t sends_ = 0;
  uint64_t recvs_ = 0;
  uint64_t resets_ = 0;
  uint64_t corruptions_ = 0;
  uint64_t stalls_ = 0;
  uint64_t fail_send_at_ = 0;  // absolute send index; 0 = disabled
  uint64_t fail_recv_at_ = 0;
};

}  // namespace vr
