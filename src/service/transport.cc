#include "service/transport.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

namespace vr {

namespace {

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(std::string("fcntl(O_NONBLOCK): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

/// Remaining wait in ms for poll(2): -1 = infinite, 0 = already expired.
int PollTimeoutMs(TransportDeadline deadline) {
  if (deadline == kNoDeadline) return -1;
  auto now = std::chrono::steady_clock::now();
  if (deadline <= now) return 0;
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - now)
                .count();
  // Round up so a sub-millisecond remainder still waits one tick
  // instead of busy-looping at timeout 0.
  return static_cast<int>(std::min<long long>(ms + 1, 1 << 30));
}

}  // namespace

Result<std::unique_ptr<SocketTransport>> SocketTransport::Connect(
    const std::string& host, uint16_t port, uint64_t timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("invalid IPv4 address: " + host);
  }

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    ::close(fd);
    return nb;
  }

  TransportDeadline deadline = DeadlineAfterMs(timeout_ms);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS && errno != EINTR) {
    Status err = Status::IOError("connect to " + host + ": " +
                                 std::strerror(errno));
    ::close(fd);
    return err;
  }
  if (rc < 0) {
    // Handshake in flight: wait for writability, then read the result.
    pollfd pfd{fd, POLLOUT, 0};
    for (;;) {
      int n = ::poll(&pfd, 1, PollTimeoutMs(deadline));
      if (n < 0 && errno == EINTR) continue;
      if (n == 0) {
        ::close(fd);
        return Status::DeadlineExceeded("connect to " + host + " timed out");
      }
      if (n < 0) {
        Status err =
            Status::IOError(std::string("poll: ") + std::strerror(errno));
        ::close(fd);
        return err;
      }
      break;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) < 0 ||
        so_error != 0) {
      Status err = Status::IOError(
          "connect to " + host + ": " +
          std::strerror(so_error != 0 ? so_error : errno));
      ::close(fd);
      return err;
    }
  }

  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<SocketTransport>(new SocketTransport(fd));
}

std::unique_ptr<SocketTransport> SocketTransport::Adopt(int fd) {
  // Best effort: if the fcntl fails the socket stays blocking, which
  // only weakens deadlines, not correctness.
  SetNonBlocking(fd).IgnoreError();  // best-effort: blocking socket still works
  return std::unique_ptr<SocketTransport>(new SocketTransport(fd));
}

Status SocketTransport::PollWait(short events,
                                 TransportDeadline deadline) const {
  pollfd pfd{fd_, events, 0};
  for (;;) {
    int n = ::poll(&pfd, 1, PollTimeoutMs(deadline));
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      return Status::IOError(std::string("poll: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Status::DeadlineExceeded("transport deadline exceeded");
    }
    return Status::OK();
  }
}

Result<size_t> SocketTransport::Send(const uint8_t* data, size_t len,
                                     TransportDeadline deadline) {
  if (fd_ < 0) return Status::IOError("send on closed transport");
  for (;;) {
    ssize_t n = ::send(fd_, data, len, MSG_NOSIGNAL);
    if (n > 0) return static_cast<size_t>(n);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      VR_RETURN_NOT_OK(PollWait(POLLOUT, deadline));
      continue;
    }
    return Status::IOError(std::string("send: ") + std::strerror(errno));
  }
}

Result<size_t> SocketTransport::Recv(uint8_t* buf, size_t len,
                                     TransportDeadline deadline) {
  if (fd_ < 0) return Status::IOError("recv on closed transport");
  for (;;) {
    ssize_t n = ::recv(fd_, buf, len, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      VR_RETURN_NOT_OK(PollWait(POLLIN, deadline));
      continue;
    }
    return Status::IOError(std::string("recv: ") + std::strerror(errno));
  }
}

void SocketTransport::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<size_t> BufferTransport::Send(const uint8_t* data, size_t len,
                                     TransportDeadline) {
  if (closed_) return Status::IOError("send on closed transport");
  if (len == 0) return static_cast<size_t>(0);
  if (sent_.size() >= send_limit_) {
    return Status::DeadlineExceeded("transport deadline exceeded");
  }
  size_t n = std::min(len, send_limit_ - sent_.size());
  sent_.insert(sent_.end(), data, data + n);
  return n;
}

Result<size_t> BufferTransport::Recv(uint8_t* buf, size_t len,
                                     TransportDeadline) {
  if (closed_) return Status::IOError("recv on closed transport");
  if (read_pos_ >= inbound_.size()) return static_cast<size_t>(0);  // EOF
  size_t n = std::min({len, recv_chunk_, inbound_.size() - read_pos_});
  std::memcpy(buf, inbound_.data() + read_pos_, n);
  read_pos_ += n;
  return n;
}

}  // namespace vr
