/// \file retry.h
/// \brief Client-side retry policy, deterministic backoff, and a
/// circuit breaker.
///
/// The failure model (see DESIGN.md "Failure model & retry semantics"):
///   - kIOError, kUnavailable and kCorruption are *retryable* — the RPC
///     may never have reached the service, or reached it over a wire
///     that mangled the reply, so repeating an idempotent request is
///     safe and likely to help.
///   - kDeadlineExceeded is NOT retryable: the caller's time budget is
///     spent; retrying would only blow past it further.
///   - Application errors (kInvalidArgument, kNotFound, ...) are not
///     retryable: the same request will fail the same way.
///
/// Only idempotent RPCs are ever retried (queries and stats reads;
/// never shutdown). Backoff is exponential with deterministic jitter
/// drawn from the caller's seeded vr::Rng so tests replay schedules
/// bit-for-bit.

#pragma once

#include <chrono>
#include <cstdint>

#include "util/rng.h"
#include "util/status.h"

namespace vr {

/// \brief Bounds on automatic retries of one logical RPC.
struct RetryPolicy {
  /// Total attempts including the first; 1 disables retries.
  int max_attempts = 3;
  /// Backoff before attempt 2.
  uint64_t initial_backoff_ms = 10;
  /// Multiplier applied per subsequent attempt.
  double multiplier = 2.0;
  /// Upper bound on any single backoff.
  uint64_t max_backoff_ms = 500;
  /// Fractional jitter: the backoff is scaled by a uniform draw from
  /// [1 - jitter, 1 + jitter]. 0 disables jitter.
  double jitter = 0.25;
};

/// \brief True when \p status may be cured by retrying an idempotent RPC.
bool IsRetryableStatus(const Status& status);

/// \brief Backoff in ms before attempt \p attempt (2-based: the wait
/// preceding the second attempt is BackoffForAttempt(policy, 2, rng)).
/// Draws exactly one uniform from \p rng when jitter is enabled.
uint64_t BackoffForAttempt(const RetryPolicy& policy, int attempt, Rng* rng);

/// \brief Circuit breaker tuning.
struct CircuitBreakerOptions {
  /// Consecutive failures that trip the breaker; <= 0 disables it.
  int failure_threshold = 5;
  /// How long the breaker stays open before allowing one probe.
  uint64_t open_ms = 1000;
};

/// \brief Classic closed → open → half-open circuit breaker.
///
/// Time is passed in by the caller (steady_clock::time_point), so unit
/// tests drive the open-interval transitions with fabricated clocks
/// instead of sleeping. Not internally synchronized: VrClient instances
/// are single-threaded, and each owns its breaker.
class CircuitBreaker {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(const CircuitBreakerOptions& options)
      : options_(options) {}

  /// True when a request may proceed. While open, flips to half-open
  /// (allowing exactly this one probe) once open_ms has elapsed.
  bool Allow(TimePoint now);

  /// Records a successful RPC: closes the breaker and resets the
  /// consecutive-failure count.
  void RecordSuccess();

  /// Records a failed RPC. A half-open probe failure reopens the
  /// breaker; in the closed state the threshold trips it.
  void RecordFailure(TimePoint now);

  State state() const { return state_; }

 private:
  CircuitBreakerOptions options_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  TimePoint open_until_{};
};

}  // namespace vr
