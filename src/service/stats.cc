#include "service/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace vr {

LatencyHistogram::LatencyHistogram() {
  // Geometric bucket bounds: 0.001 ms * 1.4^i. 1.4^63 ~= 1.6e9, so the
  // second-to-last bound sits near 1.6e6 ms (~27 minutes).
  double bound = 0.001;
  for (size_t i = 0; i + 1 < kNumBuckets; ++i) {
    bounds_[i] = bound;
    bound *= 1.4;
  }
  bounds_[kNumBuckets - 1] = std::numeric_limits<double>::infinity();
}

void LatencyHistogram::Record(double ms) {
  if (ms < 0) ms = 0;
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end() - 1, ms);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  MutexLock lock(mutex_);
  ++counts_[bucket];
  ++total_;
}

double LatencyHistogram::Percentile(double p) const {
  p = std::clamp(p, 0.0, 100.0);
  MutexLock lock(mutex_);
  if (total_ == 0) return 0.0;
  const double target = p / 100.0 * static_cast<double>(total_);
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (counts_[i] == 0) continue;
    const uint64_t next = seen + counts_[i];
    if (static_cast<double>(next) >= target) {
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      double hi = bounds_[i];
      if (!std::isfinite(hi)) hi = lo * 2;  // overflow bucket: coarse guess
      const double frac =
          (target - static_cast<double>(seen)) /
          static_cast<double>(counts_[i]);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    seen = next;
  }
  return bounds_[kNumBuckets - 2];
}

uint64_t LatencyHistogram::Count() const {
  MutexLock lock(mutex_);
  return total_;
}

void LatencyHistogram::Reset() {
  MutexLock lock(mutex_);
  counts_.fill(0);
  total_ = 0;
}

}  // namespace vr
