#include "service/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "service/wire.h"
#include "util/string_util.h"

namespace vr {

Result<std::unique_ptr<VrClient>> VrClient::Connect(const std::string& host,
                                                    uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("client host must be an IPv4 address: " +
                                   host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(StringPrintf("socket failed: %s",
                                        std::strerror(errno)));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError(StringPrintf("connect to %s:%u failed: %s",
                                        host.c_str(), port,
                                        std::strerror(err)));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<VrClient>(new VrClient(fd));
}

VrClient::~VrClient() { Close(); }

void VrClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<ServiceResponse> VrClient::Query(const Image& image, size_t k,
                                        QueryMode mode, FeatureKind feature,
                                        uint64_t deadline_ms) {
  if (fd_ < 0) return Status::IOError("client connection is closed");
  ServiceRequest request;
  request.image = image;
  request.k = k;
  request.mode = mode;
  request.feature = feature;
  request.deadline_ms = deadline_ms;
  VR_RETURN_NOT_OK(SendFrame(fd_, MessageType::kQueryRequest,
                             EncodeQueryRequest(request)));
  VR_ASSIGN_OR_RETURN(Frame frame, RecvFrame(fd_));
  if (frame.type != MessageType::kQueryResponse) {
    return Status::Corruption("unexpected reply to query request");
  }
  return DecodeQueryResponse(frame.payload);
}

Result<ServiceStatsSnapshot> VrClient::GetStats() {
  if (fd_ < 0) return Status::IOError("client connection is closed");
  VR_RETURN_NOT_OK(SendFrame(fd_, MessageType::kStatsRequest, {}));
  VR_ASSIGN_OR_RETURN(Frame frame, RecvFrame(fd_));
  if (frame.type != MessageType::kStatsResponse) {
    return Status::Corruption("unexpected reply to stats request");
  }
  return DecodeStatsResponse(frame.payload);
}

Status VrClient::Shutdown() {
  if (fd_ < 0) return Status::IOError("client connection is closed");
  VR_RETURN_NOT_OK(SendFrame(fd_, MessageType::kShutdownRequest, {}));
  VR_ASSIGN_OR_RETURN(Frame frame, RecvFrame(fd_));
  if (frame.type != MessageType::kShutdownResponse) {
    return Status::Corruption("unexpected reply to shutdown request");
  }
  Close();
  return Status::OK();
}

}  // namespace vr
