#include "service/client.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "service/wire.h"
#include "util/string_util.h"

namespace vr {

namespace {

/// Milliseconds left until \p deadline (rounded up); 0 when expired.
uint64_t RemainingMs(TransportDeadline deadline) {
  auto now = std::chrono::steady_clock::now();
  if (deadline <= now) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
          .count()) +
         1;
}

}  // namespace

Result<std::unique_ptr<VrClient>> VrClient::Connect(const std::string& host,
                                                    uint16_t port) {
  return Connect(host, port, ClientOptions{});
}

Result<std::unique_ptr<VrClient>> VrClient::Connect(const std::string& host,
                                                    uint16_t port,
                                                    ClientOptions options) {
  std::unique_ptr<VrClient> client(
      new VrClient(host, port, std::move(options)));
  // Eager connect so an unreachable server fails here, not on the
  // first RPC.
  VR_RETURN_NOT_OK(client->EnsureConnected(kNoDeadline));
  return client;
}

VrClient::~VrClient() { Close(); }

void VrClient::Close() { transport_.reset(); }

Status VrClient::EnsureConnected(TransportDeadline deadline) {
  if (transport_) return Status::OK();
  uint64_t timeout_ms = options_.connect_timeout_ms;
  if (deadline != kNoDeadline) {
    const uint64_t remaining = RemainingMs(deadline);
    if (remaining == 0) {
      return Status::DeadlineExceeded("rpc deadline expired before connect");
    }
    timeout_ms = timeout_ms == 0 ? remaining : std::min(timeout_ms, remaining);
  }
  VR_ASSIGN_OR_RETURN(std::unique_ptr<SocketTransport> socket,
                      SocketTransport::Connect(host_, port_, timeout_ms));
  std::unique_ptr<Transport> transport = std::move(socket);
  if (options_.transport_hook) {
    transport = options_.transport_hook(std::move(transport));
  }
  transport_ = std::move(transport);
  return Status::OK();
}

Result<Frame> VrClient::AttemptRpc(MessageType type,
                                   const std::vector<uint8_t>& payload,
                                   MessageType want,
                                   TransportDeadline deadline) {
  VR_RETURN_NOT_OK(SendFrame(transport_.get(), type, payload, deadline));
  VR_ASSIGN_OR_RETURN(Frame frame, RecvFrame(transport_.get(), deadline));
  if (frame.type == MessageType::kErrorResponse) {
    // A typed transport-level rejection; the server closes the
    // connection after sending it.
    Status rejection;
    VR_RETURN_NOT_OK(DecodeErrorResponse(frame.payload, &rejection));
    return rejection;
  }
  if (frame.type != want) {
    return Status::Corruption("unexpected reply type on wire");
  }
  return frame;
}

Result<Frame> VrClient::DoRpc(MessageType type,
                              const std::vector<uint8_t>& payload,
                              MessageType want, bool idempotent) {
  const TransportDeadline deadline = DeadlineAfterMs(options_.rpc_timeout_ms);
  const int max_attempts = std::max(1, options_.retry.max_attempts);
  for (int attempt = 1;; ++attempt) {
    if (!breaker_.Allow(std::chrono::steady_clock::now())) {
      return Status::Unavailable("circuit breaker open");
    }
    Status error = EnsureConnected(deadline);
    if (error.ok()) {
      Result<Frame> outcome = AttemptRpc(type, payload, want, deadline);
      if (outcome.ok()) {
        breaker_.RecordSuccess();
        return outcome;
      }
      error = outcome.status();
    }
    // A failed attempt leaves the stream in an unknown position; only
    // a fresh connection is safe to retry on.
    Close();
    breaker_.RecordFailure(std::chrono::steady_clock::now());
    if (!idempotent || !IsRetryableStatus(error) ||
        attempt >= max_attempts) {
      return error;
    }
    const uint64_t backoff_ms =
        BackoffForAttempt(options_.retry, attempt + 1, &rng_);
    if (deadline != kNoDeadline && RemainingMs(deadline) <= backoff_ms) {
      return Status::DeadlineExceeded(
          "rpc deadline would expire during retry backoff; last error: " +
          error.ToString());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
  }
}

Result<ServiceResponse> VrClient::Query(const Image& image, size_t k,
                                        QueryMode mode, FeatureKind feature,
                                        uint64_t deadline_ms) {
  ServiceRequest request;
  request.image = image;
  request.k = k;
  request.mode = mode;
  request.feature = feature;
  request.deadline_ms = deadline_ms;
  // One id per logical RPC: every retry attempt resends the same id,
  // so the server sees a repeat of an idempotent request, never a new
  // effect.
  request.request_id = next_request_id_++;
  VR_ASSIGN_OR_RETURN(Frame frame,
                      DoRpc(MessageType::kQueryRequest,
                            EncodeQueryRequest(request),
                            MessageType::kQueryResponse,
                            /*idempotent=*/true));
  VR_ASSIGN_OR_RETURN(ServiceResponse response,
                      DecodeQueryResponse(frame.payload));
  if (response.request_id != request.request_id) {
    Close();
    return Status::Corruption("query response id does not match request");
  }
  return response;
}

Result<ServiceResponse> VrClient::QueryById(int64_t frame_id, size_t k,
                                            uint64_t deadline_ms) {
  ServiceRequest request;
  request.mode = QueryMode::kById;
  request.frame_id = frame_id;
  request.k = k;
  request.deadline_ms = deadline_ms;
  request.request_id = next_request_id_++;
  VR_ASSIGN_OR_RETURN(Frame frame,
                      DoRpc(MessageType::kQueryRequest,
                            EncodeQueryRequest(request),
                            MessageType::kQueryResponse,
                            /*idempotent=*/true));
  VR_ASSIGN_OR_RETURN(ServiceResponse response,
                      DecodeQueryResponse(frame.payload));
  if (response.request_id != request.request_id) {
    Close();
    return Status::Corruption("query response id does not match request");
  }
  return response;
}

Result<ServiceStatsSnapshot> VrClient::GetStats() {
  VR_ASSIGN_OR_RETURN(Frame frame,
                      DoRpc(MessageType::kStatsRequest, {},
                            MessageType::kStatsResponse,
                            /*idempotent=*/true));
  return DecodeStatsResponse(frame.payload);
}

Status VrClient::Shutdown() {
  VR_ASSIGN_OR_RETURN(Frame frame,
                      DoRpc(MessageType::kShutdownRequest, {},
                            MessageType::kShutdownResponse,
                            /*idempotent=*/false));
  (void)frame;
  Close();
  return Status::OK();
}

}  // namespace vr
