/// \file service.h
/// \brief RetrievalService: a concurrent query front-end for the engine.
///
/// Wraps a RetrievalEngine with a worker pool, admission control and
/// per-request deadlines, turning the single-user pipeline into a
/// multi-user service (the paper's companion survey frames CBVR as
/// exactly this kind of shared retrieval service):
///
///  - Requests are executed on a fixed-size ThreadPool; queries run
///    concurrently under the engine's shared lock.
///  - Admission control bounds work-in-progress: at most num_workers
///    executing plus max_backlog waiting. Excess submissions complete
///    immediately with kUnavailable — overload never hangs a client.
///  - Each request carries a deadline; the engine checks it between
///    pipeline stages, so an expired request returns kDeadlineExceeded
///    without running the ranking stage.
///  - GetStats() snapshots served/rejected/expired counters, a latency
///    histogram (p50/p95/p99) and the storage buffer-pool counters.
///
/// Thread-safety: all public members are safe from any thread.
/// Shutdown() (also run by the destructor) drains admitted requests;
/// their futures all complete.

#pragma once

#include <atomic>
#include <chrono>
#include <future>
#include <memory>

#include "retrieval/engine.h"
#include "service/stats.h"
#include "util/thread_pool.h"

namespace vr {

/// How a query request ranks candidates.
enum class QueryMode : uint8_t {
  kCombined = 0,       ///< weighted fusion over all enabled features
  kSingleFeature = 1,  ///< one feature family only
  /// Query by a stored key-frame id: the request carries frame_id
  /// instead of an image, and the engine reads the query features
  /// straight out of the columnar store (no extraction at all).
  kById = 2,
};

/// Tuning for a RetrievalService.
struct ServiceOptions {
  /// Worker threads executing queries.
  size_t num_workers = 4;
  /// Requests allowed to wait beyond the ones executing. Admission
  /// capacity is num_workers + max_backlog.
  size_t max_backlog = 64;
  /// Deadline applied when a request does not carry its own (0 = none).
  uint64_t default_deadline_ms = 0;
  /// Test/bench hook run by the worker after dequeue, before the
  /// deadline check and the engine call. Lets tests hold a worker busy
  /// deterministically; leave unset in production.
  std::function<void()> worker_hook;
};

/// One query as submitted by a client.
struct ServiceRequest {
  /// Query frame; unused (and not shipped) for QueryMode::kById.
  Image image;
  size_t k = 10;
  QueryMode mode = QueryMode::kCombined;
  /// Feature family for QueryMode::kSingleFeature.
  FeatureKind feature = FeatureKind::kColorHistogram;
  /// Stored key-frame id for QueryMode::kById.
  int64_t frame_id = 0;
  /// Relative deadline budget in ms; 0 uses the service default.
  uint64_t deadline_ms = 0;
  /// Client-assigned id echoed in the response. Lets a retrying client
  /// match a response to its request; queries are idempotent, so a
  /// retried id is safe on the server side.
  uint64_t request_id = 0;
};

/// Outcome of one query.
struct ServiceResponse {
  /// kOK, kPartialResult (ranked results over a degraded store — see
  /// the damage summary in the status message), kUnavailable,
  /// kDeadlineExceeded, or an engine error.
  Status status;
  std::vector<QueryResult> results;
  CandidateStats stats;  ///< pruning stats of this query's selection
  uint64_t request_id = 0;  ///< echo of ServiceRequest::request_id
};

/// \brief Concurrent, admission-controlled query service over one engine.
///
/// Thread-safety: lock-free by construction — admission and every
/// counter below are plain atomics (no capability to annotate), the
/// latency histogram locks internally, and query state is confined to
/// the worker executing it. The engine's reader/writer lock provides
/// the only cross-request synchronization.
class RetrievalService {
 public:
  /// \p engine must outlive the service and stays owned by the caller
  /// (ingest may keep running through it concurrently).
  explicit RetrievalService(RetrievalEngine* engine,
                            ServiceOptions options = {});
  ~RetrievalService();
  RetrievalService(const RetrievalService&) = delete;
  RetrievalService& operator=(const RetrievalService&) = delete;

  /// Submits a query. Always returns a future that completes: with
  /// kUnavailable immediately when admission is refused, otherwise with
  /// the query outcome once a worker finishes it.
  std::future<ServiceResponse> Submit(ServiceRequest request);

  /// Blocking convenience wrapper around Submit.
  ServiceResponse Query(ServiceRequest request);

  /// Counters + latency percentiles + storage buffer-pool statistics.
  ServiceStatsSnapshot GetStats() const;

  /// Stops admission, finishes every admitted request, joins workers.
  /// Idempotent.
  void Shutdown();

  const ServiceOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  void Execute(std::shared_ptr<std::promise<ServiceResponse>> promise,
               ServiceRequest request, Clock::time_point admitted,
               Clock::time_point deadline);

  RetrievalEngine* engine_;
  ServiceOptions options_;
  size_t capacity_;  ///< num_workers + max_backlog
  std::unique_ptr<ThreadPool> pool_;

  std::atomic<bool> accepting_{true};
  std::atomic<uint64_t> received_{0};
  std::atomic<uint64_t> served_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> expired_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> in_flight_{0};
  LatencyHistogram latency_;
  /// Human-readable summary of the engine's quarantined tables,
  /// captured at construction; empty on a healthy store. Attached to
  /// every kPartialResult response.
  std::string damage_summary_;
};

}  // namespace vr
