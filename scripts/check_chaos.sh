#!/usr/bin/env bash
# Network-resilience gate: the seeded chaos sweep (server + client with
# fault-injecting transports on every connection) plus the wire fuzz
# and client-retry suites. The sweep width is VR_CHAOS_SEEDS (>= 16 for
# the gate); schedules are seed-deterministic, so a failure here replays
# bit-for-bit.
#
# Usage: scripts/check_chaos.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" --target \
  network_chaos_test wire_fuzz_test client_retry_test

# Arm the runtime lock-order validator (vr-lint rule R3): chaos
# schedules exercise rare teardown/retry interleavings where a
# hierarchy inversion would otherwise hide.
export VR_LOCK_ORDER_DEBUG=1

VR_CHAOS_SEEDS="${VR_CHAOS_SEEDS:-16}" "$BUILD_DIR"/tests/network_chaos_test
"$BUILD_DIR"/tests/wire_fuzz_test
"$BUILD_DIR"/tests/client_retry_test

echo "chaos checks clean"
