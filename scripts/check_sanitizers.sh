#!/usr/bin/env bash
# Builds the tree with AddressSanitizer + UBSan and runs the full test
# suite under them. Any sanitizer report fails the run.
#
# Usage: scripts/check_sanitizers.sh [build-dir] [ctest-args...]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"
shift || true

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DVR_SANITIZE=address,undefined
cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error turns every UBSan diagnostic into a test failure instead
# of a log line; detect_leaks covers the Env/pager ownership paths.
export ASAN_OPTIONS="detect_leaks=1:abort_on_error=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"
echo "sanitizer run clean"

# ThreadSanitizer cannot be combined with ASan in one build, so the
# concurrency suites get their own pass.
scripts/check_tsan.sh

