#!/usr/bin/env bash
# Static-analysis gate: Clang thread-safety analysis over the whole
# tree, clang-tidy (profile in .clang-tidy), and a negative compile
# probe that proves the thread-safety gate actually rejects an
# unlocked GUARDED_BY access.
#
# Requires clang++ and (for the tidy pass) clang-tidy. On machines
# without them — e.g. a GCC-only CI leg — the script prints a notice
# and exits 0: the annotations compile to nothing under GCC, so there
# is nothing this gate could check there.
#
# Usage: scripts/check_static.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-static}"

if ! command -v clang++ >/dev/null 2>&1; then
  echo "check_static: clang++ not found; skipping static analysis" >&2
  exit 0
fi

# --- 1. Negative probe: the gate must reject an unlocked access. -----
# Run first and without a configure step so a broken build setup can't
# mask a dead gate.
probe_err=$(mktemp)
trap 'rm -f "$probe_err"' EXIT
if clang++ -std=c++20 -fsyntax-only -Isrc \
    -DVR_EXPECT_TS_ERROR \
    -Wthread-safety -Wthread-safety-beta -Werror=thread-safety-analysis \
    tests/thread_safety_negative.cc 2>"$probe_err"; then
  echo "check_static: FAIL: thread_safety_negative.cc compiled cleanly;" >&2
  echo "the thread-safety gate is not rejecting unlocked accesses" >&2
  exit 1
fi
if ! grep -q "thread-safety" "$probe_err"; then
  echo "check_static: FAIL: negative probe failed for the wrong reason:" >&2
  cat "$probe_err" >&2
  exit 1
fi
echo "check_static: negative probe OK (gate rejects unlocked access)"

# --- 2. Full build under -Werror=thread-safety-analysis. -------------
cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_CXX_COMPILER=clang++ \
  -DVR_THREAD_SAFETY=ON \
  -DVR_WERROR=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
echo "check_static: thread-safety build OK"

# --- 3. clang-tidy over the library sources. -------------------------
if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "check_static: clang-tidy not found; skipping tidy pass" >&2
  echo "check_static: thread-safety checks clean"
  exit 0
fi
# Everything with a compile command: library sources plus the example
# CLIs and bench harnesses (their translation units rot first — they
# are built rarely and reviewed never). One clang-tidy process per
# core; each file is independent, so -P parallelism is safe and keeps
# the gate fast as the tree grows.
find src examples bench -name '*.cc' | sort \
  | xargs -P "$(nproc)" -n 8 clang-tidy -p "$BUILD_DIR" --quiet
echo "check_static: all static checks clean"
