#!/usr/bin/env python3
"""vr-lint: project-invariant static analysis for the vretrieve tree.

Enforces invariants stock clang-tidy cannot express (rule table in
DESIGN.md § Static analysis & lint contract):

  R1  ignore-needs-comment   every Status::IgnoreError() call carries a
                             same-line justification comment
  R2  raw-concurrency        no raw std::mutex / std::shared_mutex /
                             std::condition_variable / std::lock_guard /
                             std::unique_lock / std::scoped_lock /
                             std::shared_lock / std::thread outside
                             src/util/ — use the annotated vr:: wrappers
  R3  unranked-lock          long-lived vr::Mutex / vr::SharedMutex
                             members declare a LockLevel
  R4a no-printf              no printf/fprintf/fputs/puts in library
                             code outside the logger
  R4b no-time-rand           no rand()/srand()/std::time() in library
                             code — randomness goes through vr::Rng
  R4c no-naked-new           no naked `new` — allocations are owned by
                             unique_ptr/shared_ptr from birth

The compile-enforced half of R1 ([[nodiscard]] vr::Status +
-Werror=unused-result) and the runtime half of R3 (lock_order
validator) are driven by scripts/check_lint.sh, which also proves every
rule fires via the must-fail probes under tests/lint_probes/.

Modes: `--mode clang` tokenizes with libclang (python clang bindings +
compile_commands.json) for exact comment/string classification;
`--mode grep` uses the built-in lexer; `--mode auto` (default) prefers
clang and silently degrades to grep when the bindings are absent.

Escape hatch: a finding is suppressed when its line carries
`vr-lint: allow(<rule-id>)` in a comment — the pragma documents the
exception in place.

Exit status: 0 clean, 1 findings, 2 internal/usage error.
"""

import argparse
import os
import re
import sys

# --------------------------------------------------------------------
# Rule table
# --------------------------------------------------------------------

RAW_CONCURRENCY_TOKENS = [
    "std::mutex",
    "std::timed_mutex",
    "std::recursive_mutex",
    "std::shared_mutex",
    "std::shared_timed_mutex",
    "std::condition_variable",
    "std::condition_variable_any",
    "std::lock_guard",
    "std::scoped_lock",
    "std::unique_lock",
    "std::shared_lock",
    "std::thread",
    "std::jthread",
]

PRINTF_RE = re.compile(r"(?<![\w:])(?:std::)?(?:printf|fprintf|fputs|puts)\s*\(")
TIME_RAND_RE = re.compile(
    r"(?<![\w:])(?:std::)?(?:rand|srand|random|srandom|rand_r|drand48)\s*\("
    r"|(?<![\w:])(?:std::)?time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
)
NAKED_NEW_RE = re.compile(r"(?<![\w:])new\b(?!\s*\()")
NEW_OWNER_RE = re.compile(
    r"unique_ptr|shared_ptr|make_unique|make_shared|placement|::new"
)
IGNORE_ERROR_RE = re.compile(r"\.\s*IgnoreError\s*\(\s*\)")
# A long-lived lock member: optionally `mutable`, a (vr::-qualified)
# Mutex/SharedMutex type, a member-style name (trailing underscore) and
# no initializer — i.e. default-constructed, therefore kUnranked.
UNRANKED_LOCK_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:vr::)?(?:Mutex|SharedMutex)\s+\w+_\s*;"
)
ALLOW_RE = re.compile(r"vr-lint:\s*allow\(([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\)")

SOURCE_EXTS = (".cc", ".h")


def in_dir(path, prefix):
    return path == prefix or path.startswith(prefix + os.sep)


def scope_library(path):
    """src/ only."""
    return in_dir(path, "src")


def scope_library_no_util(path):
    """src/, examples/ and bench/ — but not src/util/ (the wrappers)."""
    if in_dir(path, "src"):
        return not in_dir(path, os.path.join("src", "util"))
    return in_dir(path, "examples") or in_dir(path, "bench")


def scope_everywhere(path):
    return any(in_dir(path, d) for d in ("src", "examples", "bench", "tests"))


def scope_no_logger(path):
    if not in_dir(path, "src"):
        return False
    return os.path.basename(path) not in ("logging.h", "logging.cc")


class Rule:
    def __init__(self, rule_id, group, scope, check, summary):
        self.rule_id = rule_id
        self.group = group  # R1..R4, for --rules filtering
        self.scope = scope
        self.check = check  # fn(line_code, line_raw) -> message or None
        self.summary = summary


def check_ignore_comment(code, raw):
    if not IGNORE_ERROR_RE.search(code):
        return None
    # The justification must live on the same line, after the call.
    tail = raw[IGNORE_ERROR_RE.search(code).end():]
    if "//" in tail or "/*" in tail:
        return None
    return (
        "IgnoreError() without a same-line justification comment; write "
        "`St().IgnoreError();  // <why dropping this error is safe>`"
    )


def check_raw_concurrency(code, raw):
    del raw
    for tok in RAW_CONCURRENCY_TOKENS:
        # Token match with identifier boundaries; std::thread must not
        # also fire on std::thread::hardware_concurrency's wrapper file
        # (scoping already excludes src/util/).
        for m in re.finditer(re.escape(tok), code):
            end = m.end()
            if end < len(code) and (code[end].isalnum() or code[end] == "_"):
                continue  # e.g. std::mutex_like
            return (
                f"raw {tok} outside src/util/ — use the annotated vr:: "
                "wrapper (vr::Mutex/vr::SharedMutex/vr::CondVar/"
                "vr::MutexLock/vr::Thread/ThreadPool) so the "
                "thread-safety and lock-order gates keep coverage"
            )
    return None


def check_unranked_lock(code, raw):
    del raw
    if UNRANKED_LOCK_RE.match(code):
        return (
            "long-lived lock member is default-constructed (kUnranked); "
            "declare its place in the hierarchy: "
            "`vr::Mutex mu_{LockLevel::kX, \"name\"};` "
            "(registry in src/util/lock_order.h)"
        )
    return None


def check_printf(code, raw):
    del raw
    if PRINTF_RE.search(code):
        return (
            "printf-family I/O in library code — route diagnostics "
            "through the logger (src/util/logging.h)"
        )
    return None


def check_time_rand(code, raw):
    del raw
    if TIME_RAND_RE.search(code):
        return (
            "C randomness / wall-clock seeding in library code — use "
            "vr::Rng (seeded, reproducible) or take the time as a "
            "parameter so callers control determinism"
        )
    return None


def check_naked_new(code, raw, prev_code=""):
    del raw
    # The owner may sit on the previous physical line
    # (`std::unique_ptr<T> p(\n    new T(...));`), so the ownership
    # search covers a two-line window.
    if NAKED_NEW_RE.search(code) and not NEW_OWNER_RE.search(
            prev_code + " " + code):
        return (
            "naked `new` — wrap the allocation in std::unique_ptr/"
            "std::shared_ptr so ownership is never in flight"
        )
    return None


RULES = [
    Rule("ignore-needs-comment", "R1", scope_everywhere, check_ignore_comment,
         "IgnoreError() carries a same-line justification"),
    Rule("raw-concurrency", "R2", scope_library_no_util, check_raw_concurrency,
         "no raw std concurrency primitives outside src/util/"),
    Rule("unranked-lock", "R3", scope_library, check_unranked_lock,
         "long-lived locks declare a LockLevel"),
    Rule("no-printf", "R4", scope_no_logger, check_printf,
         "no printf-family I/O outside the logger"),
    Rule("no-time-rand", "R4", scope_library, check_time_rand,
         "no rand()/time() randomness outside vr::Rng"),
    Rule("no-naked-new", "R4", scope_library, check_naked_new,
         "no naked new"),
]


# --------------------------------------------------------------------
# Lexing: classify comments and string literals so rules only see code.
# --------------------------------------------------------------------

def strip_noncode(lines):
    """Returns (code_lines, allow_sets): each code line with comments and
    string/char literal *contents* blanked, plus the per-line set of
    allow()-pragma rule ids (pragmas live in comments, so they are
    collected before blanking)."""
    code_lines = []
    allow_sets = []
    in_block = False
    for raw in lines:
        allows = set()
        out = []
        i, n = 0, len(raw)
        # Pragmas anywhere on the line count (they are comment text).
        for m in ALLOW_RE.finditer(raw):
            for rid in m.group(1).split(","):
                allows.add(rid.strip())
        while i < n:
            if in_block:
                end = raw.find("*/", i)
                if end < 0:
                    i = n
                else:
                    in_block = False
                    i = end + 2
                continue
            ch = raw[i]
            nxt = raw[i + 1] if i + 1 < n else ""
            if ch == "/" and nxt == "/":
                break  # rest of line is comment
            if ch == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if ch in ("\"", "'"):
                quote = ch
                out.append(quote)
                i += 1
                while i < n:
                    if raw[i] == "\\":
                        i += 2
                        continue
                    if raw[i] == quote:
                        out.append(quote)
                        i += 1
                        break
                    i += 1
                continue
            out.append(ch)
            i += 1
        code_lines.append("".join(out))
        allow_sets.append(allows)
    return code_lines, allow_sets


# --------------------------------------------------------------------
# libclang mode (optional): exact token classification.
# --------------------------------------------------------------------

def clang_code_lines(path, lines):
    """Rebuilds per-line code text from libclang tokens (comments and
    literal contents excluded). Returns None when libclang is unusable."""
    try:
        from clang import cindex  # noqa: deferred import by design
    except ImportError:
        return None
    try:
        index = cindex.Index.create()
        tu = index.parse(path, args=["-std=c++20", "-Isrc", "-fsyntax-only"],
                         options=cindex.TranslationUnit.PARSE_SKIP_FUNCTION_BODIES * 0)
        code = [""] * len(lines)
        per_line = {}
        for tok in tu.get_tokens(extent=tu.cursor.extent):
            if tok.kind == cindex.TokenKind.COMMENT:
                continue
            spelling = tok.spelling
            if tok.kind == cindex.TokenKind.LITERAL and (
                    spelling.startswith('"') or spelling.startswith("'")):
                spelling = spelling[0] + spelling[-1]
            line = tok.location.line - 1
            if 0 <= line < len(lines):
                per_line.setdefault(line, []).append(spelling)
        for line, toks in per_line.items():
            code[line] = " ".join(toks)
        return code
    except Exception:
        return None


# --------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------

def iter_files(root, explicit):
    if explicit:
        for f in explicit:
            yield os.path.relpath(os.path.abspath(f), root)
        return
    for top in ("src", "examples", "bench", "tests"):
        top_dir = os.path.join(root, top)
        for dirpath, dirnames, filenames in os.walk(top_dir):
            dirnames.sort()
            rel_dir = os.path.relpath(dirpath, root)
            # The probes violate the rules on purpose.
            if rel_dir.startswith(os.path.join("tests", "lint_probes")):
                continue
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    yield os.path.join(rel_dir, name)


def lint_file(root, rel_path, mode, groups, findings, all_scopes=False):
    abs_path = os.path.join(root, rel_path)
    try:
        with open(abs_path, encoding="utf-8", errors="replace") as fh:
            raw_lines = fh.read().splitlines()
    except OSError as exc:
        print(f"vr-lint: cannot read {rel_path}: {exc}", file=sys.stderr)
        return False
    code_lines = None
    if mode in ("auto", "clang"):
        code_lines = clang_code_lines(abs_path, raw_lines)
        if code_lines is None and mode == "clang":
            print("vr-lint: libclang unavailable but --mode clang forced",
                  file=sys.stderr)
            sys.exit(2)
    _, allow_sets = strip_noncode(raw_lines)
    if code_lines is None:
        code_lines, allow_sets = strip_noncode(raw_lines)
    active = [r for r in RULES
              if r.group in groups
              and (all_scopes or r.scope(rel_path.replace(os.sep, "/")))]
    if not active:
        return True
    for lineno, (code, raw) in enumerate(zip(code_lines, raw_lines), start=1):
        allows = allow_sets[lineno - 1] if lineno - 1 < len(allow_sets) else set()
        prev_code = code_lines[lineno - 2] if lineno >= 2 else ""
        for rule in active:
            if rule.rule_id in allows:
                continue
            if rule.rule_id == "no-naked-new":
                msg = rule.check(code, raw, prev_code)
            else:
                msg = rule.check(code, raw)
            if msg:
                findings.append((rel_path, lineno, rule.rule_id, msg))
    return True


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*",
                        help="files to lint (default: the whole tree)")
    parser.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: the script's parent)")
    parser.add_argument("--mode", choices=("auto", "clang", "grep"),
                        default="auto")
    parser.add_argument("--rules", default="R1,R2,R3,R4",
                        help="comma-separated rule groups to run")
    parser.add_argument("--all-scopes", action="store_true",
                        help="ignore per-rule path scoping (probe runs: "
                        "the must-fail probes live under tests/lint_probes/, "
                        "outside every rule's normal scope)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.group:3} {rule.rule_id:22} {rule.summary}")
        return 0

    groups = {g.strip() for g in args.rules.split(",") if g.strip()}
    findings = []
    ok = True
    for rel_path in iter_files(args.root, args.files):
        ok = lint_file(args.root, rel_path, args.mode, groups, findings,
                       args.all_scopes) and ok
    if not ok:
        return 2
    for path, lineno, rule_id, msg in findings:
        print(f"{path}:{lineno}: [{rule_id}] {msg}")
    if findings:
        print(f"vr-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
