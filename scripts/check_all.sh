#!/usr/bin/env bash
# The whole gate, in dependency order: docs consistency (no build),
# vr-lint (project-invariant rules R1-R4 with must-fail probes; works
# compiler-agnostic, degrades gracefully without python3),
# static analysis (Clang thread-safety + clang-tidy; skips itself on
# machines without clang), the plain build + full test suite, the
# query-bench smoke run (its built-in serial-vs-sharded parity assert),
# the feature-bench smoke run (fused-vs-legacy bit parity),
# the scale-bench smoke run (warm-open gate + two-stage-vs-exact
# parity + the two-stage p50 <= exact p50 speed gate at its largest
# smoke corpus),
# the network chaos sweep (seeded fault injection + wire fuzzing),
# then the sanitizer passes (ASan/UBSan over everything, TSan over the
# concurrency suites — check_sanitizers.sh chains into check_tsan.sh
# itself).
#
# Usage: scripts/check_all.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

scripts/check_docs.sh
scripts/check_lint.sh
scripts/check_static.sh

cmake -B "$BUILD_DIR" -S . -G Ninja -DVR_WERROR=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure

"$BUILD_DIR"/bench/micro_query --smoke
"$BUILD_DIR"/bench/micro_features --smoke
"$BUILD_DIR"/bench/micro_scale --smoke

scripts/check_chaos.sh "$BUILD_DIR"
scripts/check_sanitizers.sh

echo "all checks clean"
