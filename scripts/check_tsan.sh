#!/usr/bin/env bash
# Builds the tree with ThreadSanitizer and runs the concurrency-focused
# suites (thread pool, service, wire/server, engine reader-writer
# stress, network chaos / fuzz / retry). Any data-race report fails
# the run.
#
# Usage: scripts/check_tsan.sh [build-dir] [ctest-args...]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"
shift || true

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DVR_SANITIZE=thread
cmake --build "$BUILD_DIR" -j "$(nproc)"

export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
# Arm the runtime lock-order validator (vr-lint rule R3): the TSan leg
# already runs the heaviest concurrent schedules, so hierarchy
# inversions surface here deterministically.
export VR_LOCK_ORDER_DEBUG=1

ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -R 'ThreadPool|Service|Wire|Concurrency|IngestPipeline|Chaos|Fuzz|Retry|LockOrder' "$@"
echo "tsan run clean"
