#!/usr/bin/env bash
# vr-lint gate: project-invariant static analysis (rules R1–R4, table
# in DESIGN.md § Static analysis & lint contract) with must-fail
# probes. Order of business:
#
#   1. Probe sweep — every probe under tests/lint_probes/ must be
#      REJECTED by its rule. A probe that passes means the gate is
#      dead, and the script fails loudly (same philosophy as
#      tests/thread_safety_negative.cc).
#   2. Full-tree lint — scripts/vr_lint.py over src/, examples/,
#      bench/, tests/ must be clean.
#   3. R1 compile probe — a dropped [[nodiscard]] vr::Status must not
#      compile under -Werror=unused-result (works under GCC *and*
#      Clang, so GCC-only legs keep full R1 coverage).
#   4. R3 runtime probe — an out-of-order lock acquisition must abort
#      under VR_LOCK_ORDER_DEBUG.
#
# vr_lint.py prefers libclang token classification and degrades to its
# built-in lexer when the clang python bindings are absent; the compile
# probes pick clang++ or g++, whichever exists. With neither compiler
# nor python3 the script skips itself with a notice (graceful-skip
# contract shared with check_static.sh).
#
# Usage: scripts/check_lint.sh
set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v python3 >/dev/null 2>&1; then
  echo "check_lint: python3 not found; skipping vr-lint gate" >&2
  exit 0
fi

LINT="python3 scripts/vr_lint.py"

# --- 1. Probe sweep: each lint probe must trip exactly its rule. -----
probe_must_fail() {
  local probe="$1" rule="$2" out
  PROBED_RULES="$PROBED_RULES $rule"
  if out=$($LINT --all-scopes "$probe" 2>&1); then
    echo "check_lint: FAIL: $probe passed the linter;" >&2
    echo "rule '$rule' is not firing — the gate is dead" >&2
    exit 1
  fi
  if ! grep -q "\[$rule\]" <<<"$out"; then
    echo "check_lint: FAIL: $probe was rejected for the wrong reason:" >&2
    echo "$out" >&2
    exit 1
  fi
}

PROBED_RULES=""
probe_must_fail tests/lint_probes/probe_r1_ignore_no_comment.cc ignore-needs-comment
probe_must_fail tests/lint_probes/probe_r2_raw_mutex.cc raw-concurrency
probe_must_fail tests/lint_probes/probe_r3_unranked_lock.cc unranked-lock
probe_must_fail tests/lint_probes/probe_r4_hygiene.cc no-printf
probe_must_fail tests/lint_probes/probe_r4_hygiene.cc no-time-rand
probe_must_fail tests/lint_probes/probe_r4_hygiene.cc no-naked-new

# A rule the linter knows but no probe exercises is a rule that can die
# silently. Fail the gate until the new rule ships with its probe.
while read -r _ rule _; do
  if ! grep -qw "$rule" <<<"$PROBED_RULES"; then
    echo "check_lint: FAIL: rule '$rule' has no must-fail probe;" >&2
    echo "add one under tests/lint_probes/ and register it above" >&2
    exit 1
  fi
done < <($LINT --list-rules)
echo "check_lint: lint probes OK (every rule fires)"

# --- 2. Full tree must be clean. -------------------------------------
$LINT
echo "check_lint: tree clean under rules R1-R4"

# --- Compile probes need a C++ compiler. -----------------------------
CXX=""
for candidate in clang++ g++ c++; do
  if command -v "$candidate" >/dev/null 2>&1; then
    CXX="$candidate"
    break
  fi
done
if [[ -z "$CXX" ]]; then
  echo "check_lint: no C++ compiler found; skipping compile probes" >&2
  exit 0
fi

# --- 3. R1 compile probe: dropped Status must not compile. -----------
probe_err=$(mktemp)
probe_bin=$(mktemp)
trap 'rm -f "$probe_err" "$probe_bin"' EXIT
if "$CXX" -std=c++20 -Isrc -fsyntax-only -Werror=unused-result \
    tests/lint_probes/probe_r1_discard_status.cc 2>"$probe_err"; then
  echo "check_lint: FAIL: probe_r1_discard_status.cc compiled cleanly;" >&2
  echo "[[nodiscard]] on vr::Status is not being enforced" >&2
  exit 1
fi
if ! grep -Eq "unused-result|nodiscard" "$probe_err"; then
  echo "check_lint: FAIL: R1 compile probe failed for the wrong reason:" >&2
  cat "$probe_err" >&2
  exit 1
fi
echo "check_lint: R1 compile probe OK (dropped Status rejected)"

# --- 4. R3 runtime probe: lock-order inversion must abort. -----------
"$CXX" -std=c++20 -Isrc -o "$probe_bin" \
  tests/lint_probes/probe_r3_lock_order_runtime.cc src/util/lock_order.cc \
  -lpthread
if VR_LOCK_ORDER_DEBUG=1 "$probe_bin" 2>"$probe_err"; then
  echo "check_lint: FAIL: lock-order inversion ran to completion;" >&2
  echo "the runtime validator is not firing" >&2
  exit 1
fi
if ! grep -q "lock-order violation" "$probe_err"; then
  echo "check_lint: FAIL: R3 runtime probe died for the wrong reason:" >&2
  cat "$probe_err" >&2
  exit 1
fi
# And the validator must stay quiet when disarmed — otherwise every
# production binary would be paying (and trusting) an unasked-for gate.
if ! VR_LOCK_ORDER_DEBUG=0 "$probe_bin" >/dev/null 2>&1; then
  echo "check_lint: FAIL: R3 probe aborted with the validator disarmed" >&2
  exit 1
fi
echo "check_lint: R3 runtime probe OK (inversion aborts when armed)"

echo "check_lint: all vr-lint checks clean"
