#!/usr/bin/env bash
# Documentation consistency check: every repo-relative path mentioned in
# the top-level docs must exist, the README must link the architecture
# document, and the symbols the docs lean on must still be defined in
# the headers. Grep-based on purpose — no build needed, so it runs in
# CI before anything compiles.
#
# Usage: scripts/check_docs.sh
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0
err() { echo "check_docs: $*" >&2; fail=1; }

DOCS=(README.md DESIGN.md EXPERIMENTS.md docs/ARCHITECTURE.md docs/FORMAT.md)

for doc in "${DOCS[@]}"; do
  [[ -f "$doc" ]] || err "missing document: $doc"
done

# 1. Every backticked or markdown-linked repo path in the docs exists.
#    Matches src/..., tests/..., bench/..., examples/..., scripts/...,
#    docs/... plus top-level *.md; tolerates `path` and [txt](path).
for doc in "${DOCS[@]}"; do
  [[ -f "$doc" ]] || continue
  while IFS= read -r path; do
    # Globs like micro_* or <table>.heap placeholders are prose, not paths.
    [[ "$path" == *'*'* || "$path" == *'<'* ]] && continue
    # An extensionless path is a build target (./build/bench/foo); its
    # source must exist instead.
    if [[ ! -e "$path" && ! -e "$path.cc" && ! -e "$path.cpp" ]]; then
      err "$doc references missing path: $path"
    fi
  done < <(grep -oE '(src|tests|bench|examples|scripts|docs)/[A-Za-z0-9_./*<>-]+' "$doc" \
           | sed 's/[.,;:)]*$//' | sort -u)
done

# 2. README links the architecture document, and the byte-level format
#    spec is linked from both entry points that promise it.
grep -q 'docs/ARCHITECTURE.md' README.md \
  || err "README.md does not link docs/ARCHITECTURE.md"
grep -q 'docs/FORMAT.md' README.md \
  || err "README.md does not link docs/FORMAT.md"
grep -q 'FORMAT.md' docs/ARCHITECTURE.md \
  || err "docs/ARCHITECTURE.md does not link FORMAT.md"

# 2b. No dead intra-repo markdown links: every [text](target) whose
#     target is a relative path must resolve from the doc's directory
#     (external URLs and pure #anchors are skipped, a #fragment after
#     a path is stripped).
for doc in "${DOCS[@]}"; do
  [[ -f "$doc" ]] || continue
  dir=$(dirname "$doc")
  while IFS= read -r target; do
    [[ "$target" == http* || "$target" == \#* ]] && continue
    path="${target%%#*}"
    [[ -z "$path" ]] && continue
    [[ -e "$dir/$path" || -e "$path" ]] \
      || err "$doc has dead markdown link: $target"
  done < <(grep -oE '\]\(([^)]+)\)' "$doc" | sed 's/^](//; s/)$//' | sort -u)
done

# 3. Symbols the docs hang their explanations on still exist in code.
declare -A SYMBOLS=(
  [IngestPipeline]=src/retrieval/ingest_pipeline.h
  [CommitPrepared]=src/retrieval/engine.h
  [PrepareKeyFrame]=src/retrieval/engine.h
  [IngestStats]=src/retrieval/ingest_stats.h
  [RetrievalService]=src/service/service.h
  [SharedMutex]=src/util/shared_mutex.h
  [ThreadPool]=src/util/thread_pool.h
  [CliSpec]=src/util/cli_flags.h
  [VideoStore]=src/storage/video_store.h
)
for sym in "${!SYMBOLS[@]}"; do
  hdr="${SYMBOLS[$sym]}"
  if [[ ! -f "$hdr" ]]; then
    err "header for documented symbol $sym missing: $hdr"
  elif ! grep -q "$sym" "$hdr"; then
    err "documented symbol $sym not found in $hdr"
  fi
done

# 4. The CLIs the docs describe ship a --help handled by the shared
#    flags table (the anti-drift mechanism README/DESIGN point at).
for cli in examples/serve_cli.cpp examples/ingest_admin.cpp \
           examples/search_cli.cpp; do
  grep -q 'cli_flags.h' "$cli" || err "$cli does not use util/cli_flags.h"
done

# 5. The bench recipes in EXPERIMENTS.md match actual targets.
grep -q 'micro_ingest' bench/CMakeLists.txt \
  || err "EXPERIMENTS.md recipe target micro_ingest not in bench/CMakeLists.txt"
grep -q 'micro_scale' bench/CMakeLists.txt \
  || err "EXPERIMENTS.md recipe target micro_scale not in bench/CMakeLists.txt"

# 6. Headline figures quoted in EXPERIMENTS.md agree with the committed
#    BENCH JSONs — the anti-drift gate for measured numbers. Each check
#    recomputes the doc's figure from the JSON it cites.
json_field() {  # json_field <file> <key>: first numeric value of key
  grep -oE "\"$2\": [0-9.]+" "$1" | head -1 | grep -oE '[0-9.]+$'
}
quoted_2dp() {  # quoted_2dp <value>: the doc quotes <value> to 2 decimals
  # A value like 16.965 rounds to 16.96 or 16.97 depending on the
  # rounding mode (and on FP representation), so accept both.
  local lo hi
  lo=$(awk -v v="$1" 'BEGIN{printf "%.2f", int(v*100)/100}')
  hi=$(awk -v v="$1" 'BEGIN{printf "%.2f", (int(v*100)+1)/100}')
  grep -qE "$(echo "$lo" | sed 's/\./\\./')|$(echo "$hi" | sed 's/\./\\./')" \
    EXPERIMENTS.md
}
if [[ -f BENCH_features.json ]]; then
  legacy=$(json_field BENCH_features.json legacy_total_ms)
  fused=$(json_field BENCH_features.json fused_total_ms)
  speedup=$(awk -v a="$legacy" -v b="$fused" 'BEGIN{print a/b}')
  quoted_2dp "$speedup" \
    || err "EXPERIMENTS.md fused-extraction speedup drifted from" \
           "BENCH_features.json (expected ~$(awk -v v="$speedup" \
           'BEGIN{printf "%.2f", v}')x)"
fi
if [[ -f BENCH_query.json ]]; then
  p50=$(grep -oE '"config": "shards=1", "p50_ms": [0-9.]+' BENCH_query.json \
        | grep -oE '[0-9.]+$')
  quoted_2dp "$p50" \
    || err "EXPERIMENTS.md serial query p50 drifted from BENCH_query.json" \
           "(expected ~$(awk -v v="$p50" 'BEGIN{printf "%.2f", v}') ms)"
fi
if [[ -f BENCH_scale.json ]]; then
  warm=$(grep -oE '"warm_open_ms": [0-9.]+' BENCH_scale.json | tail -1 \
         | grep -oE '[0-9.]+$')
  grep -q "$warm" EXPERIMENTS.md \
    || err "EXPERIMENTS.md corpus-scaling warm-open figure drifted from" \
           "BENCH_scale.json (expected $warm ms)"
  # The two-stage figures at the largest corpus: the doc must quote the
  # staged p50 and the staged median must beat the exact scan it claims
  # to beat (the same invariant micro_scale --smoke gates in CI).
  staged=$(grep -oE '"two_stage": \{"p50_ms": [0-9.]+' BENCH_scale.json \
           | tail -1 | grep -oE '[0-9.]+$')
  exact=$(grep -oE '"exact": \{"p50_ms": [0-9.]+' BENCH_scale.json \
          | tail -1 | grep -oE '[0-9.]+$')
  quoted_2dp "$staged" \
    || err "EXPERIMENTS.md corpus-scaling two-stage p50 drifted from" \
           "BENCH_scale.json (expected ~$staged ms)"
  awk -v s="$staged" -v e="$exact" 'BEGIN{exit !(s <= e)}' \
    || err "BENCH_scale.json two-stage p50 ($staged ms) loses to the" \
           "exact scan ($exact ms) at the largest corpus"
fi

if [[ "$fail" -ne 0 ]]; then
  echo "check_docs: FAILED" >&2
  exit 1
fi
echo "docs check clean"
