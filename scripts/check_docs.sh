#!/usr/bin/env bash
# Documentation consistency check: every repo-relative path mentioned in
# the top-level docs must exist, the README must link the architecture
# document, and the symbols the docs lean on must still be defined in
# the headers. Grep-based on purpose — no build needed, so it runs in
# CI before anything compiles.
#
# Usage: scripts/check_docs.sh
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0
err() { echo "check_docs: $*" >&2; fail=1; }

DOCS=(README.md DESIGN.md EXPERIMENTS.md docs/ARCHITECTURE.md)

for doc in "${DOCS[@]}"; do
  [[ -f "$doc" ]] || err "missing document: $doc"
done

# 1. Every backticked or markdown-linked repo path in the docs exists.
#    Matches src/..., tests/..., bench/..., examples/..., scripts/...,
#    docs/... plus top-level *.md; tolerates `path` and [txt](path).
for doc in "${DOCS[@]}"; do
  [[ -f "$doc" ]] || continue
  while IFS= read -r path; do
    # Globs like micro_* or <table>.heap placeholders are prose, not paths.
    [[ "$path" == *'*'* || "$path" == *'<'* ]] && continue
    # An extensionless path is a build target (./build/bench/foo); its
    # source must exist instead.
    if [[ ! -e "$path" && ! -e "$path.cc" && ! -e "$path.cpp" ]]; then
      err "$doc references missing path: $path"
    fi
  done < <(grep -oE '(src|tests|bench|examples|scripts|docs)/[A-Za-z0-9_./*<>-]+' "$doc" \
           | sed 's/[.,;:)]*$//' | sort -u)
done

# 2. README links the architecture document.
grep -q 'docs/ARCHITECTURE.md' README.md \
  || err "README.md does not link docs/ARCHITECTURE.md"

# 3. Symbols the docs hang their explanations on still exist in code.
declare -A SYMBOLS=(
  [IngestPipeline]=src/retrieval/ingest_pipeline.h
  [CommitPrepared]=src/retrieval/engine.h
  [PrepareKeyFrame]=src/retrieval/engine.h
  [IngestStats]=src/retrieval/ingest_stats.h
  [RetrievalService]=src/service/service.h
  [SharedMutex]=src/util/shared_mutex.h
  [ThreadPool]=src/util/thread_pool.h
  [CliSpec]=src/util/cli_flags.h
  [VideoStore]=src/storage/video_store.h
)
for sym in "${!SYMBOLS[@]}"; do
  hdr="${SYMBOLS[$sym]}"
  if [[ ! -f "$hdr" ]]; then
    err "header for documented symbol $sym missing: $hdr"
  elif ! grep -q "$sym" "$hdr"; then
    err "documented symbol $sym not found in $hdr"
  fi
done

# 4. The CLIs the docs describe ship a --help handled by the shared
#    flags table (the anti-drift mechanism README/DESIGN point at).
for cli in examples/serve_cli.cpp examples/ingest_admin.cpp \
           examples/search_cli.cpp; do
  grep -q 'cli_flags.h' "$cli" || err "$cli does not use util/cli_flags.h"
done

# 5. The bench recipe in EXPERIMENTS.md matches an actual target.
grep -q 'micro_ingest' bench/CMakeLists.txt \
  || err "EXPERIMENTS.md recipe target micro_ingest not in bench/CMakeLists.txt"

if [[ "$fail" -ne 0 ]]; then
  echo "check_docs: FAILED" >&2
  exit 1
fi
echo "docs check clean"
