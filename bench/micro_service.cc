/// \file micro_service.cc
/// \brief Microbenchmarks for the concurrent retrieval service: query
/// throughput versus worker count on a Table-1 style corpus, and the
/// admission-control fast path under overload.
///
/// Throughput should scale with workers on multi-core hardware because
/// query execution (feature extraction + ranking) is CPU-bound and runs
/// under the engine's shared lock.

#include <benchmark/benchmark.h>

#include <future>
#include <vector>

#include "eval/corpus.h"
#include "eval/table1_runner.h"  // RemoveDirRecursive
#include "service/service.h"

namespace {

/// One engine + small Table-1 corpus, built once per binary run.
vr::RetrievalEngine* SharedEngine() {
  static std::unique_ptr<vr::RetrievalEngine> engine;
  if (!engine) {
    const std::string dir = "/tmp/vretrieve_bench_service";
    vr::RemoveDirRecursive(dir);
    vr::EngineOptions options;
    options.store_video_blob = false;
    engine = vr::RetrievalEngine::Open(dir, options).value();
    vr::CorpusSpec spec;
    spec.videos_per_category = 2;
    spec.width = 128;
    spec.height = 96;
    spec.scenes_per_video = 2;
    spec.frames_per_scene = 10;
    (void)vr::BuildCorpus(engine.get(), spec).value();
  }
  return engine.get();
}

std::vector<vr::Image> QueryFrames() {
  vr::CorpusSpec spec;
  spec.width = 128;
  spec.height = 96;
  std::vector<vr::Image> queries;
  for (int c = 0; c < vr::kNumCategories; ++c) {
    queries.push_back(vr::MakeQueryFrame(spec,
                                         static_cast<vr::VideoCategory>(c),
                                         7000 + static_cast<uint64_t>(c))
                          .value());
  }
  return queries;
}

/// End-to-end throughput: a batch of queries submitted together and
/// drained, executed by `workers` pool threads sharing the engine's
/// read lock. items_per_second is the figure of merit.
void BM_ServiceThroughput(benchmark::State& state) {
  vr::RetrievalEngine* engine = SharedEngine();
  const auto queries = QueryFrames();
  vr::ServiceOptions options;
  options.num_workers = static_cast<size_t>(state.range(0));
  options.max_backlog = 256;
  vr::RetrievalService service(engine, options);

  constexpr size_t kBatch = 16;
  uint64_t failures = 0;
  for (auto _ : state) {
    std::vector<std::future<vr::ServiceResponse>> futures;
    futures.reserve(kBatch);
    for (size_t i = 0; i < kBatch; ++i) {
      vr::ServiceRequest request;
      request.image = queries[i % queries.size()];
      request.k = 10;
      futures.push_back(service.Submit(std::move(request)));
    }
    for (auto& f : futures) {
      if (!f.get().status.ok()) ++failures;
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kBatch));
  const vr::ServiceStatsSnapshot stats = service.GetStats();
  state.counters["workers"] =
      static_cast<double>(options.num_workers);
  state.counters["p50_ms"] = stats.p50_ms;
  state.counters["p95_ms"] = stats.p95_ms;
  state.counters["failures"] = static_cast<double>(failures);
}
BENCHMARK(BM_ServiceThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Cost of a deterministic kUnavailable rejection: the overload path
/// must stay cheap (no engine work, no blocking).
void BM_ServiceRejection(benchmark::State& state) {
  vr::RetrievalEngine* engine = SharedEngine();
  const auto queries = QueryFrames();
  vr::ServiceOptions options;
  options.num_workers = 1;
  options.max_backlog = 0;
  // Hold the single worker hostage so every submission after the first
  // is refused at admission.
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  options.worker_hook = [gate] { gate.wait(); };
  vr::RetrievalService service(engine, options);
  vr::ServiceRequest blocker;
  blocker.image = queries[0];
  auto blocked = service.Submit(blocker);

  for (auto _ : state) {
    vr::ServiceRequest request;
    request.image = queries[0];
    vr::ServiceResponse response = service.Query(request);
    if (!response.status.IsUnavailable()) {
      state.SkipWithError("expected kUnavailable under overload");
      break;
    }
  }
  release.set_value();
  blocked.get();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServiceRejection)->Unit(benchmark::kMicrosecond);

}  // namespace
