/// \file micro_recovery.cc
/// \brief Microbenchmarks for crash recovery: WAL replay throughput,
/// checksum-verified open vs plain open, and full journal recovery,
/// each as a function of store size.

#include <benchmark/benchmark.h>
#include <sys/stat.h>

#include "eval/table1_runner.h"  // RemoveDirRecursive
#include "storage/database.h"
#include "storage/wal.h"
#include "util/fault_injection_env.h"

namespace {

std::string BenchDir(const char* name) {
  const std::string dir = std::string("/tmp/vretrieve_bench_") + name;
  vr::RemoveDirRecursive(dir);
  mkdir(dir.c_str(), 0755);
  return dir;
}

vr::Schema RecoverySchema() {
  return vr::Schema::Create(
             {
                 {"ID", vr::ColumnType::kInt64, false},
                 {"NAME", vr::ColumnType::kText, true},
                 {"DATA", vr::ColumnType::kBlob, true},
             },
             "ID")
      .value();
}

vr::Row RecoveryRow(int64_t pk, size_t blob_bytes) {
  return {vr::Value(pk), vr::Value("row-" + std::to_string(pk)),
          vr::Value::Blob(std::vector<uint8_t>(
              blob_bytes, static_cast<uint8_t>(pk & 0xFF)))};
}

/// Scanning a synced journal of N records (parse + checksum only).
void BM_WalReplay(benchmark::State& state) {
  const std::string dir = BenchDir("wal_replay");
  const int64_t n = state.range(0);
  auto wal = vr::Wal::Open(dir + "/journal.wal").value();
  const std::vector<uint8_t> payload(128, 0x5A);
  for (int64_t i = 0; i < n; ++i) {
    (void)wal->AppendInsert("T", i, payload);
  }
  (void)wal->Sync();
  for (auto _ : state) {
    int64_t seen = 0;
    (void)wal->Replay([&](const vr::WalRecord&) {
      ++seen;
      return vr::Status::OK();
    });
    benchmark::DoNotOptimize(seen);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_WalReplay)->Arg(100)->Arg(1000)->Arg(10000);

void BuildCleanStore(const std::string& dir, int64_t rows) {
  vr::DatabaseOptions options;
  options.create_if_missing = true;
  auto db = vr::Database::Open(dir, options).value();
  (void)db->CreateTable("T", RecoverySchema()).value();
  for (int64_t i = 0; i < rows; ++i) {
    (void)db->Insert("T", RecoveryRow(i, 2048)).value();
  }
  (void)db->Close();
}

/// Checkpointed open: catalog + pager metas, empty journal.
void BM_PlainOpen(benchmark::State& state) {
  const std::string dir = BenchDir("plain_open");
  BuildCleanStore(dir, state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(vr::Database::Open(dir, false));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PlainOpen)->Arg(100)->Arg(1000);

/// Degraded-mode open: every page of every file re-read and its
/// checksum verified before serving.
void BM_VerifiedOpen(benchmark::State& state) {
  const std::string dir = BenchDir("verified_open");
  BuildCleanStore(dir, state.range(0));
  vr::DatabaseOptions options;
  options.paranoid = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vr::Database::Open(dir, options));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VerifiedOpen)->Arg(100)->Arg(1000);

/// Full crash recovery: the durable state holds the catalog and a
/// journal of N committed inserts whose table pages never hit disk, so
/// every open scrubs and replays all N records from scratch.
void BM_CrashRecoveryOpen(benchmark::State& state) {
  const std::string dir = "crash_open";
  const int64_t n = state.range(0);
  vr::FaultInjectionEnv build_env;
  vr::DatabaseOptions options;
  options.create_if_missing = true;
  options.env = &build_env;
  auto db = vr::Database::Open(dir, options).value();
  (void)db->CreateTable("T", RecoverySchema()).value();
  for (int64_t i = 0; i < n; ++i) {
    (void)db->Insert("T", RecoveryRow(i, 700)).value();
  }
  // Snapshot before Close can checkpoint: the journal is durable, the
  // table pages are not — exactly the disk a crash would leave.
  const vr::FaultInjectionEnv::Snapshot crashed = build_env.DurableSnapshot();
  for (auto _ : state) {
    vr::FaultInjectionEnv env(crashed);
    options.env = &env;
    benchmark::DoNotOptimize(vr::Database::Open(dir, options));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CrashRecoveryOpen)->Arg(100)->Arg(1000);

}  // namespace
