/// \file micro_storage.cc
/// \brief Microbenchmarks for the storage engine: B+tree, heap file,
/// blob store, table inserts/gets, WAL append.

#include <benchmark/benchmark.h>
#include <sys/stat.h>

#include "eval/table1_runner.h"  // RemoveDirRecursive
#include "storage/table.h"
#include "storage/wal.h"
#include "util/rng.h"

namespace {

std::string BenchDir(const char* name) {
  const std::string dir = std::string("/tmp/vretrieve_bench_") + name;
  vr::RemoveDirRecursive(dir);
  mkdir(dir.c_str(), 0755);
  return dir;
}

void BM_BPlusTreeInsert(benchmark::State& state) {
  const std::string dir = BenchDir("bt_insert");
  int64_t key = 0;
  auto pager = vr::Pager::Open(dir + "/bt.vpg", true).value();
  auto tree = vr::BPlusTree::Open(pager.get()).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree->Insert(key++, vr::Rid{1, 0}).ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BPlusTreeInsert);

void BM_BPlusTreeLookup(benchmark::State& state) {
  const std::string dir = BenchDir("bt_lookup");
  auto pager = vr::Pager::Open(dir + "/bt.vpg", true).value();
  auto tree = vr::BPlusTree::Open(pager.get()).value();
  const int64_t n = state.range(0);
  for (int64_t k = 0; k < n; ++k) {
    (void)tree->Insert(k, vr::Rid{1, 0});
  }
  vr::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree->Get(rng.UniformInt(0, n - 1)));
  }
  state.SetItemsProcessed(state.iterations());
  const vr::PagerStats ps = pager->GetStats();
  state.counters["pager_fetches"] = static_cast<double>(ps.fetches);
  state.counters["pager_hit_rate"] =
      ps.fetches ? static_cast<double>(ps.hits) / ps.fetches : 0.0;
  state.counters["pager_evictions"] = static_cast<double>(ps.evictions);
}
BENCHMARK(BM_BPlusTreeLookup)->Arg(1000)->Arg(100000);

void BM_HeapInsert(benchmark::State& state) {
  const std::string dir = BenchDir("heap_insert");
  auto pager = vr::Pager::Open(dir + "/heap.vpg", true).value();
  auto heap = vr::HeapFile::Open(pager.get()).value();
  const std::vector<uint8_t> record(static_cast<size_t>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(heap->Insert(record));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HeapInsert)->Arg(64)->Arg(1024);

void BM_BlobPutGet(benchmark::State& state) {
  const std::string dir = BenchDir("blob");
  auto pager = vr::Pager::Open(dir + "/blob.vpg", true).value();
  vr::BlobStore store(pager.get());
  const std::vector<uint8_t> blob(static_cast<size_t>(state.range(0)), 0x5A);
  for (auto _ : state) {
    const vr::BlobRef ref = store.Put(blob).value();
    benchmark::DoNotOptimize(store.Get(ref));
    (void)store.Delete(ref);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_BlobPutGet)->Arg(8 << 10)->Arg(256 << 10);

void BM_TableInsert(benchmark::State& state) {
  const std::string dir = BenchDir("table_insert");
  vr::Schema schema =
      vr::Schema::Create(
          {
              {"ID", vr::ColumnType::kInt64, false},
              {"NAME", vr::ColumnType::kText, true},
              {"FEAT", vr::ColumnType::kText, true},
          },
          "ID")
          .value();
  auto table = vr::Table::Open(dir, "t", schema, true).value();
  const std::string feature(400, 'f');
  int64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table->Insert({vr::Value(id++), vr::Value("row"),
                       vr::Value(feature)}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TableInsert);

void BM_TableGet(benchmark::State& state) {
  const std::string dir = BenchDir("table_get");
  vr::Schema schema =
      vr::Schema::Create(
          {
              {"ID", vr::ColumnType::kInt64, false},
              {"FEAT", vr::ColumnType::kText, true},
          },
          "ID")
          .value();
  auto table = vr::Table::Open(dir, "t", schema, true).value();
  const std::string feature(400, 'f');
  const int64_t n = 10000;
  for (int64_t id = 0; id < n; ++id) {
    (void)table->Insert({vr::Value(id), vr::Value(feature)});
  }
  vr::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table->Get(rng.UniformInt(0, n - 1)));
  }
  state.SetItemsProcessed(state.iterations());
  const vr::PagerStats ps = table->GetPagerStats();
  state.counters["pager_fetches"] = static_cast<double>(ps.fetches);
  state.counters["pager_hit_rate"] =
      ps.fetches ? static_cast<double>(ps.hits) / ps.fetches : 0.0;
  state.counters["pager_evictions"] = static_cast<double>(ps.evictions);
}
BENCHMARK(BM_TableGet);

void BM_WalAppendSync(benchmark::State& state) {
  const std::string dir = BenchDir("wal");
  auto wal = vr::Wal::Open(dir + "/j.wal").value();
  const std::vector<uint8_t> payload(512, 1);
  int64_t pk = 0;
  for (auto _ : state) {
    (void)wal->AppendInsert("T", pk++, payload);
    (void)wal->Sync();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WalAppendSync);

}  // namespace
