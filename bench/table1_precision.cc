/// \file table1_precision.cc
/// \brief Regenerates the paper's Table 1: average precision at
/// 20/30/50/100 retrieved frames for GLCM, Gabor, Tamura, Histogram,
/// Autocorrelogram, Simple Region Growing, and the Combined method.
///
/// The corpus is the synthetic archive.org substitute (5 categories);
/// relevance = retrieved key frame belongs to a video of the query's
/// category (the simulated user study).
///
///   ./table1_precision [videos_per_category] [queries_per_category] [seed]

#include <cstdio>

#include "eval/table1_runner.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  vr::Table1Options options;
  options.db_dir = "/tmp/vretrieve_table1_bench";
  options.corpus.videos_per_category =
      argc > 1 ? static_cast<int>(vr::ParseInt64(argv[1]).ValueOr(8)) : 8;
  options.study.queries_per_category =
      argc > 2 ? static_cast<int>(vr::ParseInt64(argv[2]).ValueOr(8)) : 8;
  options.corpus.seed =
      argc > 3 ? static_cast<uint64_t>(vr::ParseInt64(argv[3]).ValueOr(2012))
               : 2012;
  options.corpus.width = 128;
  options.corpus.height = 96;
  options.corpus.scenes_per_video = 8;
  options.corpus.frames_per_scene = 10;
  options.study.cutoffs = {20, 30, 50, 100};
  options.fit_weights = true;  // extension column "combined-fit"
  options.fit.train_queries_per_category = 4;
  options.fit.iterations = 2;
  // Optimize the regime where equal weights struggle (around the @50
  // cutoff the weakest feature drags the fusion).
  options.fit.cutoff = 50;

  std::printf("=== Table 1: precision at 20/30/50/100 documents ===\n");
  std::printf("corpus: %d categories x %d videos, %d scenes x %d frames, "
              "seed %llu; %d queries/category\n\n",
              vr::kNumCategories, options.corpus.videos_per_category,
              options.corpus.scenes_per_video,
              options.corpus.frames_per_scene,
              static_cast<unsigned long long>(options.corpus.seed),
              options.study.queries_per_category);

  vr::Stopwatch timer;
  auto result = vr::RunTable1(options);
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", result->ToTableString(options.study.cutoffs).c_str());
  std::printf("(%zu videos, %zu key frames, %.1f s)\n", result->videos,
              result->key_frames, timer.ElapsedSeconds());
  if (!result->fitted_weights.empty()) {
    std::printf("\nfitted fusion weights (extension; paper uses equal "
                "weights):\n");
    for (const auto& [kind, w] : result->fitted_weights) {
      std::printf("  %-10s %.2f\n", vr::FeatureKindName(kind), w);
    }
  }

  std::printf("\npaper's Table 1 for comparison (absolute values depend on "
              "the corpus; the shape is what should match):\n");
  std::printf("  method:   GLCM  Gabor Tamura Hist  ACC   Regions Combined\n");
  std::printf("  prec@20:  0.435 0.586 0.568  0.398 0.412 0.520   0.629\n");
  std::printf("  prec@30:  0.423 0.528 0.514  0.368 0.405 0.468   0.553\n");
  std::printf("  prec@50:  0.410 0.489 0.469  0.324 0.369 0.434   0.494\n");
  std::printf("  prec@100: 0.354 0.396 0.412  0.310 0.342 0.397   0.421\n");

  // Shape checks the paper's conclusions rest on.
  const double combined20 = result->Precision("combined", 0);
  double best_single20 = 0.0;
  double mean_single20 = 0.0;
  int n_single = 0;
  for (const vr::MethodEvaluation& m : result->methods) {
    if (m.method.rfind("combined", 0) == 0) continue;
    best_single20 = std::max(best_single20, m.precision_at[0]);
    mean_single20 += m.precision_at[0];
    ++n_single;
  }
  mean_single20 /= n_single;
  std::printf("\nshape checks:\n");
  std::printf("  combined@20 (%.3f) vs best single (%.3f): %s\n", combined20,
              best_single20,
              combined20 >= best_single20 ? "combined wins (paper: wins)"
                                          : "combined loses");
  std::printf("  combined@20 (%.3f) vs mean single (%.3f): %s\n", combined20,
              mean_single20,
              combined20 > mean_single20 ? "above average (paper: above)"
                                         : "below average");
  for (const vr::MethodEvaluation& m : result->methods) {
    bool monotone = true;
    for (size_t i = 1; i < m.precision_at.size(); ++i) {
      if (m.precision_at[i] > m.precision_at[i - 1] + 1e-9) monotone = false;
    }
    std::printf("  %s precision decays with cutoff: %s\n", m.method.c_str(),
                monotone ? "yes (paper: yes)" : "no");
  }
  return 0;
}
