/// \file micro_retrieval.cc
/// \brief Microbenchmarks for the retrieval path: key-frame extraction,
/// index-pruned vs full-scan queries, DTW video similarity.

#include <benchmark/benchmark.h>

#include <cmath>

#include "eval/table1_runner.h"  // RemoveDirRecursive
#include "keyframe/keyframe_extractor.h"
#include "retrieval/engine.h"
#include "similarity/dtw.h"
#include "video/synth/generator.h"

namespace {

std::vector<vr::Image> BenchVideo(vr::VideoCategory category, uint64_t seed) {
  vr::SyntheticVideoSpec spec;
  spec.category = category;
  spec.width = 128;
  spec.height = 96;
  spec.num_scenes = 3;
  spec.frames_per_scene = 10;
  spec.seed = seed;
  return vr::GenerateVideoFrames(spec).value();
}

/// Builds a shared engine with a small corpus once per benchmark run.
vr::RetrievalEngine* SharedEngine(bool use_index) {
  static std::unique_ptr<vr::RetrievalEngine> engine_with_index;
  static std::unique_ptr<vr::RetrievalEngine> engine_no_index;
  auto& slot = use_index ? engine_with_index : engine_no_index;
  if (!slot) {
    const std::string dir = use_index ? "/tmp/vretrieve_bench_q_idx"
                                      : "/tmp/vretrieve_bench_q_noidx";
    vr::RemoveDirRecursive(dir);
    vr::EngineOptions options;
    options.enabled_features = {vr::FeatureKind::kColorHistogram,
                                vr::FeatureKind::kGlcm,
                                vr::FeatureKind::kNaiveSignature};
    options.use_index = use_index;
    options.store_video_blob = false;
    slot = vr::RetrievalEngine::Open(dir, options).value();
    for (int c = 0; c < vr::kNumCategories; ++c) {
      for (int v = 0; v < 4; ++v) {
        (void)slot->IngestFrames(
            BenchVideo(static_cast<vr::VideoCategory>(c),
                       100 + static_cast<uint64_t>(c) * 10 +
                           static_cast<uint64_t>(v)),
            "bench");
      }
    }
  }
  return slot.get();
}

void BM_KeyFrameExtraction(benchmark::State& state) {
  const auto frames = BenchVideo(vr::VideoCategory::kSports, 1);
  vr::KeyFrameExtractor extractor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.Extract(frames));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(frames.size()));
}
BENCHMARK(BM_KeyFrameExtraction)->Unit(benchmark::kMillisecond);

void BM_QueryByImage(benchmark::State& state) {
  vr::RetrievalEngine* engine = SharedEngine(state.range(0) != 0);
  const vr::Image query = BenchVideo(vr::VideoCategory::kMovie, 999)[5];
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->QueryByImage(query, 20));
  }
  state.SetLabel(state.range(0) != 0 ? "index" : "full-scan");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueryByImage)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_QueryByVideoDtw(benchmark::State& state) {
  vr::RetrievalEngine* engine = SharedEngine(true);
  const auto query = BenchVideo(vr::VideoCategory::kCartoon, 998);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->QueryByVideo(query, 5));
  }
}
BENCHMARK(BM_QueryByVideoDtw)->Unit(benchmark::kMillisecond);

void BM_DtwScalar(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> a(n);
  std::vector<double> b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = std::sin(0.1 * static_cast<double>(i));
    b[i] = std::sin(0.1 * static_cast<double>(i) + 0.5);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(vr::DtwDistanceScalar(a, b));
  }
}
BENCHMARK(BM_DtwScalar)->Arg(64)->Arg(512);

}  // namespace
