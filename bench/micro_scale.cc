/// \file micro_scale.cc
/// \brief Corpus-scaling benchmark: warm open via the persisted
/// FeatureMatrix cache and two-stage quantized querying at 10k-100k
/// key frames. Plain executable (see EXPERIMENTS.md "Corpus scaling"
/// for the reproducible recipe); writes machine-readable results to
/// BENCH_scale.json (or the path given as argv[1]).
///
/// Extraction would dominate wall time long before the storage layer
/// is stressed, so the corpus is synthesized directly at the
/// VideoStore level: clustered feature vectors (per-video cluster
/// center + per-frame noise, so nearest-neighbor structure exists for
/// the coarse stage to preserve) written through PutKeyFrames in
/// batches, no pixels anywhere.
///
/// Per corpus size, four measurements:
///  - cold open: first engine open scans the store, builds the
///    columnar matrix, and persists it (matrix.vrm);
///  - warm open: second open pages the persisted columns back without
///    touching a single store row — the cache's reason to exist;
///  - by-id query latency with the two-stage path off (exact scan of
///    the double columns) and on (quantized coarse scan, exact
///    rerank of the survivors).
///
/// Every two-stage run is asserted bit-identical to the exact
/// baseline over the sampled queries before its numbers are reported
/// (PARITY FAILURE exits non-zero), and the warm open must actually
/// have warm-loaded (stats().warm_loaded) — these are the
/// correctness gates, the numbers are the product.
///
/// `--smoke` runs a seconds-scale corpus, keeps both gates, skips the
/// JSON; scripts/check_all.sh uses it as a regression gate.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "eval/table1_runner.h"  // RemoveDirRecursive
#include "retrieval/engine.h"
#include "storage/page.h"  // kPageSize, to report matrix.vrm bytes
#include "storage/video_store.h"
#include "util/stopwatch.h"

namespace {

constexpr vr::FeatureKind kKinds[] = {vr::FeatureKind::kColorHistogram,
                                      vr::FeatureKind::kGlcm,
                                      vr::FeatureKind::kNaiveSignature};
constexpr size_t kKindDims[] = {64, 6, 24};
constexpr size_t kFramesPerVideo = 100;

vr::EngineOptions BenchOptions(bool two_stage) {
  vr::EngineOptions options;
  options.enabled_features = {kKinds[0], kKinds[1], kKinds[2]};
  options.store_video_blob = false;
  options.use_index = false;  // scale the scan, not the bucket index
  // Identity normalization keeps fused scores batch-independent,
  // which is what makes the two-stage rerank exact for multi-feature
  // queries (see docs/DESIGN.md).
  options.normalization = vr::NormalizationKind::kNone;
  options.two_stage = two_stage;
  // The smallest smoke corpus must still exercise the coarse stage.
  options.two_stage_min_candidates = 256;
  return options;
}

/// Writes \p key_frames clustered synthetic records straight into a
/// fresh VideoStore. Returns the stored key-frame ids.
std::vector<int64_t> SynthesizeCorpus(const std::string& dir,
                                      size_t key_frames) {
  vr::RemoveDirRecursive(dir);
  auto store = vr::VideoStore::Open(dir).value();
  std::mt19937_64 rng(0x5CA1Eu);
  std::uniform_real_distribution<double> center_dist(0.0, 100.0);
  std::normal_distribution<double> noise(0.0, 2.0);

  std::vector<int64_t> ids;
  ids.reserve(key_frames);
  size_t remaining = key_frames;
  int video_index = 0;
  while (remaining > 0) {
    const size_t frames = std::min(kFramesPerVideo, remaining);
    remaining -= frames;

    vr::VideoRecord video;
    video.v_id = store->NextVideoId();
    video.v_name = "scale_" + std::to_string(video_index++);
    video.dostore = "2026-08-07";
    (void)store->PutVideo(video).value();

    // One cluster center per video and per kind; frames scatter
    // around it, so frames of the same video are mutual near
    // neighbors — the structure a coarse stage must not destroy.
    std::vector<std::vector<double>> centers(std::size(kKinds));
    for (size_t kind = 0; kind < std::size(kKinds); ++kind) {
      centers[kind].resize(kKindDims[kind]);
      for (double& v : centers[kind]) v = center_dist(rng);
    }

    std::vector<vr::KeyFrameRecord> batch;
    batch.reserve(frames);
    for (size_t f = 0; f < frames; ++f) {
      vr::KeyFrameRecord rec;
      rec.i_id = store->NextKeyFrameId();
      rec.i_name = video.v_name + "_kf" + std::to_string(f);
      rec.v_id = video.v_id;
      rec.min = 0;
      rec.max = 255;
      for (size_t kind = 0; kind < std::size(kKinds); ++kind) {
        std::vector<double> values = centers[kind];
        for (double& v : values) v = std::max(0.0, v + noise(rng));
        rec.features.emplace(
            kKinds[kind],
            vr::FeatureVector(vr::FeatureKindName(kKinds[kind]),
                              std::move(values)));
      }
      ids.push_back(rec.i_id);
      batch.push_back(std::move(rec));
    }
    if (!store->PutKeyFrames(batch).ok()) {
      std::fprintf(stderr, "PutKeyFrames failed\n");
      std::exit(1);
    }
  }
  (void)store->Checkpoint();
  return ids;
}

double Percentile(std::vector<double> sorted_ms, double p) {
  std::sort(sorted_ms.begin(), sorted_ms.end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_ms.size() - 1) / 100.0 + 0.5);
  return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

struct QueryRun {
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double qps = 0.0;
};

QueryRun MeasureById(vr::RetrievalEngine* engine,
                     const std::vector<int64_t>& sample, size_t iters,
                     size_t k) {
  for (size_t i = 0; i < std::min<size_t>(sample.size(), 4); ++i) {
    (void)engine->QueryByStoredId(sample[i], k);
  }
  std::vector<double> ms;
  ms.reserve(iters);
  vr::Stopwatch total;
  for (size_t i = 0; i < iters; ++i) {
    vr::Stopwatch sw;
    (void)engine->QueryByStoredId(sample[i % sample.size()], k).value();
    ms.push_back(sw.ElapsedMillis());
  }
  QueryRun run;
  run.qps = static_cast<double>(iters) / (total.ElapsedMillis() / 1000.0);
  run.p50_ms = Percentile(ms, 50);
  run.p95_ms = Percentile(ms, 95);
  return run;
}

struct SizeResult {
  size_t key_frames = 0;
  double cold_open_ms = 0.0;
  double warm_open_ms = 0.0;
  uint64_t matrix_bytes = 0;
  QueryRun exact;
  QueryRun staged;
  uint64_t coarse_survivors = 0;  ///< mean survivors per staged query
  uint64_t fallbacks = 0;         ///< counted exact-scan fallbacks
  uint64_t margin_kept = 0;       ///< rerank-margin extras kept
};

SizeResult RunSize(const std::string& dir, size_t key_frames, size_t iters,
                   size_t k) {
  std::printf("synthesizing %zu key frames...\n", key_frames);
  const std::vector<int64_t> ids = SynthesizeCorpus(dir, key_frames);

  SizeResult result;
  result.key_frames = ids.size();

  // Cold open: no matrix.vrm yet — the engine scans every store row,
  // builds the columns, and persists them on the way out.
  {
    vr::Stopwatch sw;
    auto engine =
        vr::RetrievalEngine::Open(dir, BenchOptions(false)).value();
    result.cold_open_ms = sw.ElapsedMillis();
    const vr::MatrixStore::Stats stats = engine->matrix_store_stats();
    if (stats.warm_loaded || stats.rewrites == 0) {
      std::fprintf(stderr, "cold open did not persist the matrix\n");
      std::exit(1);
    }
    result.matrix_bytes = stats.pages * vr::kPageSize;
  }

  // Every id, k results each, would take minutes at 100k; a spread
  // sample is just as informative for latency and parity.
  std::vector<int64_t> sample;
  const size_t sample_size = std::min<size_t>(ids.size(), 64);
  for (size_t i = 0; i < sample_size; ++i) {
    sample.push_back(ids[i * ids.size() / sample_size]);
  }

  std::vector<std::vector<vr::QueryResult>> baseline;

  // Warm open + exact baseline.
  {
    vr::Stopwatch sw;
    auto engine =
        vr::RetrievalEngine::Open(dir, BenchOptions(false)).value();
    result.warm_open_ms = sw.ElapsedMillis();
    if (!engine->matrix_store_stats().warm_loaded) {
      std::fprintf(stderr, "warm open fell back to a store scan\n");
      std::exit(1);
    }
    for (int64_t id : sample) {
      baseline.push_back(engine->QueryByStoredId(id, k).value());
    }
    result.exact = MeasureById(engine.get(), sample, iters, k);
  }

  // Two-stage: parity first, numbers second.
  {
    auto engine =
        vr::RetrievalEngine::Open(dir, BenchOptions(true)).value();
    for (size_t i = 0; i < sample.size(); ++i) {
      const auto staged = engine->QueryByStoredId(sample[i], k).value();
      const auto& expected = baseline[i];
      bool same = staged.size() == expected.size();
      for (size_t j = 0; same && j < staged.size(); ++j) {
        same = staged[j].i_id == expected[j].i_id &&
               staged[j].score == expected[j].score;
      }
      if (!same) {
        std::fprintf(stderr,
                     "PARITY FAILURE: two-stage diverges from exact on "
                     "query %zu at %zu key frames\n",
                     i, key_frames);
        std::exit(1);
      }
    }
    const vr::QueryStats before = engine->query_stats();
    result.staged = MeasureById(engine.get(), sample, iters, k);
    const vr::QueryStats after = engine->query_stats();
    const uint64_t staged_queries =
        after.two_stage_queries - before.two_stage_queries;
    if (staged_queries == 0) {
      std::fprintf(stderr, "two-stage path never activated at %zu\n",
                   key_frames);
      std::exit(1);
    }
    result.coarse_survivors =
        (after.coarse_candidates - before.coarse_candidates) / staged_queries;
    result.fallbacks = after.two_stage_fallbacks - before.two_stage_fallbacks;
    result.margin_kept = after.margin_kept - before.margin_kept;
  }

  vr::RemoveDirRecursive(dir);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_scale.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }
  const std::string dir = "/tmp/vretrieve_bench_scale";
  const std::vector<size_t> sizes =
      smoke ? std::vector<size_t>{2000, 8000}
            : std::vector<size_t>{10000, 50000, 100000};
  const size_t iters = smoke ? 16 : 48;
  const size_t k = 10;

  std::vector<SizeResult> results;
  for (size_t size : sizes) {
    results.push_back(RunSize(dir, size, iters, k));
  }
  std::printf("parity: two-stage top-%zu bit-identical to exact at every "
              "size\n\n",
              k);

  std::printf("%10s %12s %12s %12s %11s %11s %9s %9s %9s\n", "key_frames",
              "cold_open_ms", "warm_open_ms", "matrix_MiB", "exact_p50",
              "staged_p50", "speedup", "survivors", "fallbacks");
  for (const SizeResult& r : results) {
    std::printf(
        "%10zu %12.1f %12.1f %12.2f %11.2f %11.2f %8.2fx %9llu %9llu\n",
        r.key_frames, r.cold_open_ms, r.warm_open_ms,
        static_cast<double>(r.matrix_bytes) / (1024.0 * 1024.0),
        r.exact.p50_ms, r.staged.p50_ms, r.exact.p50_ms / r.staged.p50_ms,
        static_cast<unsigned long long>(r.coarse_survivors),
        static_cast<unsigned long long>(r.fallbacks));
  }

  if (smoke) {
    // CI gate: past the eligibility threshold the coarse kernels must
    // actually pay for themselves — at the largest smoke corpus the
    // staged median may not lose to the exact scan it claims to beat.
    const SizeResult& largest = results.back();
    if (largest.staged.p50_ms > largest.exact.p50_ms) {
      std::fprintf(stderr,
                   "SPEED REGRESSION: two-stage p50 %.3fms > exact p50 "
                   "%.3fms at %zu key frames\n",
                   largest.staged.p50_ms, largest.exact.p50_ms,
                   largest.key_frames);
      return 1;
    }
    std::printf("\nmicro_scale smoke: PASS (two-stage p50 %.2fms <= exact "
                "p50 %.2fms at %zu key frames)\n",
                largest.staged.p50_ms, largest.exact.p50_ms,
                largest.key_frames);
    return 0;
  }

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n  \"benchmark\": \"corpus_scaling\",\n"
               "  \"iterations\": %zu,\n  \"top_k\": %zu,\n"
               "  \"sizes\": [\n",
               iters, k);
  for (size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    std::fprintf(
        json,
        "    {\"key_frames\": %zu, \"cold_open_ms\": %.1f, "
        "\"warm_open_ms\": %.1f, \"matrix_bytes\": %llu,\n"
        "     \"exact\": {\"p50_ms\": %.3f, \"p95_ms\": %.3f, "
        "\"qps\": %.1f},\n"
        "     \"two_stage\": {\"p50_ms\": %.3f, \"p95_ms\": %.3f, "
        "\"qps\": %.1f, \"coarse_survivors\": %llu, \"fallbacks\": %llu, "
        "\"margin_kept\": %llu}}%s\n",
        r.key_frames, r.cold_open_ms, r.warm_open_ms,
        static_cast<unsigned long long>(r.matrix_bytes), r.exact.p50_ms,
        r.exact.p95_ms, r.exact.qps, r.staged.p50_ms, r.staged.p95_ms,
        r.staged.qps, static_cast<unsigned long long>(r.coarse_survivors),
        static_cast<unsigned long long>(r.fallbacks),
        static_cast<unsigned long long>(r.margin_kept),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
