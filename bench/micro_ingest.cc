/// \file micro_ingest.cc
/// \brief Bulk-ingest benchmark: serial IngestFrames loop versus the
/// staged IngestPipeline at 1/2/4/8 workers over the same synthetic
/// corpus. Plain executable (see EXPERIMENTS.md "Bulk ingest" for the
/// reproducible recipe); writes machine-readable results to
/// BENCH_ingest.json (or the path given as argv[1]).
///
/// Ingest is CPU-bound (Gabor + correlogram extraction dominates; the
/// batched commit amortizes journal fsyncs), so videos/sec should
/// scale with workers up to the physical core count. The `cpus` field
/// in the JSON records how many cores the numbers were taken on —
/// on a single-core machine every worker count collapses to ~1x.

#include <cstdio>
#include <string>
#include <vector>

#include "eval/table1_runner.h"  // RemoveDirRecursive
#include "retrieval/engine.h"
#include "retrieval/ingest_pipeline.h"
#include "util/stopwatch.h"
#include "util/thread.h"
#include "video/synth/generator.h"

namespace {

constexpr int kVideos = 8;

std::vector<std::vector<vr::Image>> BuildCorpus() {
  std::vector<std::vector<vr::Image>> corpus;
  for (int i = 0; i < kVideos; ++i) {
    vr::SyntheticVideoSpec spec;
    spec.category =
        static_cast<vr::VideoCategory>(i % vr::kNumCategories);
    spec.width = 96;
    spec.height = 72;
    spec.num_scenes = 2;
    spec.frames_per_scene = 8;
    spec.seed = 9000 + static_cast<uint64_t>(i);
    corpus.push_back(vr::GenerateVideoFrames(spec).value());
  }
  return corpus;
}

vr::EngineOptions BenchOptions() {
  vr::EngineOptions options;  // all seven extractors, the honest load
  options.store_video_blob = true;
  return options;
}

struct RunResult {
  std::string label;
  double seconds = 0.0;
  double videos_per_sec = 0.0;
};

RunResult RunSerial(const std::vector<std::vector<vr::Image>>& corpus) {
  const std::string dir = "/tmp/vretrieve_bench_ingest_serial";
  vr::RemoveDirRecursive(dir);
  auto engine = vr::RetrievalEngine::Open(dir, BenchOptions()).value();
  vr::Stopwatch timer;
  for (size_t i = 0; i < corpus.size(); ++i) {
    (void)engine->IngestFrames(corpus[i], "bench_" + std::to_string(i))
        .value();
  }
  RunResult result;
  result.label = "serial";
  result.seconds = timer.ElapsedMillis() / 1000.0;
  result.videos_per_sec = corpus.size() / result.seconds;
  vr::RemoveDirRecursive(dir);
  return result;
}

RunResult RunPipeline(const std::vector<std::vector<vr::Image>>& corpus,
                      size_t workers) {
  const std::string dir = "/tmp/vretrieve_bench_ingest_w" +
                          std::to_string(workers);
  vr::RemoveDirRecursive(dir);
  auto engine = vr::RetrievalEngine::Open(dir, BenchOptions()).value();
  vr::IngestPipelineOptions options;
  options.workers = workers;
  vr::Stopwatch timer;
  {
    vr::IngestPipeline pipeline(engine.get(), options);
    for (size_t i = 0; i < corpus.size(); ++i) {
      vr::IngestJob job;
      job.name = "bench_" + std::to_string(i);
      job.frames = corpus[i];
      pipeline.Submit(std::move(job));
    }
    for (const auto& r : pipeline.Finish()) (void)r.value();
  }
  RunResult result;
  result.label = "workers=" + std::to_string(workers);
  result.seconds = timer.ElapsedMillis() / 1000.0;
  result.videos_per_sec = corpus.size() / result.seconds;
  vr::RemoveDirRecursive(dir);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_ingest.json";
  const unsigned cpus = vr::Thread::HardwareConcurrency();

  std::printf("building corpus: %d synthetic videos...\n", kVideos);
  const auto corpus = BuildCorpus();

  std::vector<RunResult> results;
  results.push_back(RunSerial(corpus));
  for (size_t workers : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    results.push_back(RunPipeline(corpus, workers));
  }

  const double baseline = results[0].videos_per_sec;
  std::printf("\n%-12s %10s %12s %9s   (%u cpus)\n", "config", "seconds",
              "videos/s", "speedup", cpus);
  for (const RunResult& r : results) {
    std::printf("%-12s %10.2f %12.2f %8.2fx\n", r.label.c_str(), r.seconds,
                r.videos_per_sec, r.videos_per_sec / baseline);
  }

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n  \"benchmark\": \"bulk_ingest\",\n"
               "  \"videos\": %d,\n  \"cpus\": %u,\n  \"runs\": [\n",
               kVideos, cpus);
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::fprintf(json,
                 "    {\"config\": \"%s\", \"seconds\": %.3f, "
                 "\"videos_per_sec\": %.3f, \"speedup\": %.3f}%s\n",
                 r.label.c_str(), r.seconds, r.videos_per_sec,
                 r.videos_per_sec / baseline, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
