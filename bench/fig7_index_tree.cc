/// \file fig7_index_tree.cc
/// \brief Regenerates the paper's Figure 7 (the histogram range-finder
/// indexing tree): pushes a corpus of key frames through the indexer,
/// prints the tree with per-bucket occupancy, and measures the pruning
/// factor index lookups achieve versus a full scan.
///
///   ./fig7_index_tree [videos_per_category] [seed]

#include <cstdio>

#include "eval/corpus.h"
#include "eval/table1_runner.h"
#include "index/range_bucket_index.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  const int per_category =
      argc > 1 ? static_cast<int>(vr::ParseInt64(argv[1]).ValueOr(6)) : 6;
  const uint64_t seed =
      argc > 2 ? static_cast<uint64_t>(vr::ParseInt64(argv[2]).ValueOr(42))
               : 42;

  // Build key frames via a fast engine (histogram feature only: the
  // index needs only the gray histogram).
  const std::string dir = "/tmp/vretrieve_fig7";
  vr::RemoveDirRecursive(dir);
  vr::EngineOptions options;
  options.enabled_features = {vr::FeatureKind::kColorHistogram};
  options.store_video_blob = false;
  auto engine = vr::RetrievalEngine::Open(dir, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  vr::CorpusSpec corpus;
  corpus.videos_per_category = per_category;
  corpus.width = 128;
  corpus.height = 96;
  corpus.seed = seed;
  auto info = vr::BuildCorpus(engine->get(), corpus);
  if (!info.ok()) {
    std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
    return 1;
  }

  // Rebuild a standalone index over the stored key frames so the bucket
  // map is inspectable.
  vr::RangeBucketIndex index;
  vr::Status scan_status =
      (*engine)->store()->ScanKeyFrames([&](const vr::KeyFrameRecord& rec) {
        index.InsertAt(rec.i_id,
                       vr::GrayRange{static_cast<int>(rec.min),
                                     static_cast<int>(rec.max), 0});
        return true;
      });
  if (!scan_status.ok()) {
    std::fprintf(stderr, "%s\n", scan_status.ToString().c_str());
    return 1;
  }

  std::printf("=== Figure 7: histogram range-finder indexing tree ===\n");
  std::printf("%zu key frames in %zu occupied buckets\n\n", index.size(),
              index.bucket_count());

  // Print the full tree with occupancy, indented by depth.
  for (const vr::GrayRange& node : vr::AllTreeRanges(3)) {
    size_t occupancy = 0;
    for (const auto& [range, ids] : index.buckets()) {
      if (range.min == node.min && range.max == node.max) {
        occupancy = ids.size();
      }
    }
    const std::string bar(occupancy, '#');
    std::printf("%*s%-12s %3zu frame(s)  %s\n", node.depth * 4, "",
                node.ToString().c_str(), occupancy, bar.c_str());
  }

  // Pruning factor: average candidates per query bucket under each mode.
  std::printf("\npruning (average candidate fraction over occupied "
              "buckets):\n");
  for (auto [mode, name] :
       {std::make_pair(vr::RangeLookupMode::kExact, "exact bucket"),
        std::make_pair(vr::RangeLookupMode::kLineage, "lineage (lossless)"),
        std::make_pair(vr::RangeLookupMode::kOverlapping, "overlapping")}) {
    double total_fraction = 0.0;
    size_t queries = 0;
    for (const auto& [range, ids] : index.buckets()) {
      const auto candidates = index.Lookup(range, mode);
      total_fraction +=
          static_cast<double>(candidates.size()) / index.size();
      ++queries;
    }
    std::printf("  %-20s %5.1f%% of corpus scanned per query\n", name,
                100.0 * total_fraction / queries);
  }
  std::printf("  %-20s 100.0%% of corpus scanned per query\n", "full scan");
  return 0;
}
