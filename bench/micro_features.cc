/// \file micro_features.cc
/// \brief google-benchmark microbenchmarks for the seven feature
/// extractors and their distances.

#include <benchmark/benchmark.h>

#include "features/extractor_registry.h"
#include "imaging/draw.h"
#include "util/rng.h"

namespace {

vr::Image BenchImage(int w, int h, uint64_t seed) {
  vr::Rng rng(seed);
  vr::Image img(w, h, 3);
  vr::FillVerticalGradient(&img, {40, 70, 120}, {200, 180, 90});
  vr::DrawStripes(&img, 9, 35.0, {90, 40, 40}, {40, 90, 40});
  vr::AddGaussianNoise(&img, 6.0, &rng);
  return img;
}

void BM_Extract(benchmark::State& state) {
  const auto kind = static_cast<vr::FeatureKind>(state.range(0));
  const int size = static_cast<int>(state.range(1));
  auto extractor = vr::MakeExtractor(kind);
  const vr::Image img = BenchImage(size, size * 3 / 4, 1);
  for (auto _ : state) {
    auto fv = extractor->Extract(img);
    benchmark::DoNotOptimize(fv);
  }
  state.SetLabel(vr::FeatureKindName(kind));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Extract)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5, 6}, {128, 256}})
    ->Unit(benchmark::kMillisecond);

void BM_Distance(benchmark::State& state) {
  const auto kind = static_cast<vr::FeatureKind>(state.range(0));
  auto extractor = vr::MakeExtractor(kind);
  const vr::FeatureVector a =
      extractor->Extract(BenchImage(160, 120, 2)).value();
  const vr::FeatureVector b =
      extractor->Extract(BenchImage(160, 120, 3)).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor->Distance(a, b));
  }
  state.SetLabel(vr::FeatureKindName(kind));
}
BENCHMARK(BM_Distance)->DenseRange(0, 6);

void BM_FeatureStringRoundTrip(benchmark::State& state) {
  auto extractor = vr::MakeExtractor(vr::FeatureKind::kGabor);
  const vr::FeatureVector fv =
      extractor->Extract(BenchImage(128, 96, 4)).value();
  for (auto _ : state) {
    const std::string s = fv.ToString();
    auto back = vr::FeatureVector::FromString(s);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_FeatureStringRoundTrip);

}  // namespace
