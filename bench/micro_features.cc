/// \file micro_features.cc
/// \brief Feature-extraction benchmark: legacy per-extractor extraction
/// versus the fused ExtractionPlan, with per-intermediate timings.
/// Plain executable (see EXPERIMENTS.md "Feature extraction" for the
/// reproducible recipe); writes machine-readable results to
/// BENCH_features.json (or the path given as argv[1]).
///
/// Three measurements over the same query-geometry frames:
///  - legacy: each registered extractor's standalone Extract;
///  - fused: one ExtractionPlan::ExtractAll pass, split into
///    per-extractor time (inside the fused paths) and per-intermediate
///    time (gray plane, gray histogram, HSV plane, float luma);
///  - totals: whole-bank cost legacy vs fused — the number the query
///    path's extract_ms actually pays.
///
/// Every run first asserts the fused plan reproduces the legacy
/// extractors bit for bit on every frame. `--smoke` keeps that parity
/// gate on a seconds-scale pass and skips the JSON;
/// scripts/check_all.sh uses it as a regression gate.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "features/extractor_registry.h"
#include "features/plan/extraction_plan.h"
#include "imaging/draw.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

/// Query-frame geometry (the shape search_cli and the query bench use).
constexpr int kWidth = 120;
constexpr int kHeight = 90;

vr::Image BenchImage(uint64_t seed) {
  vr::Rng rng(seed);
  vr::Image img(kWidth, kHeight, 3);
  vr::FillVerticalGradient(&img, {40, 70, 120}, {200, 180, 90});
  vr::DrawStripes(&img, 9, 35.0, {90, 40, 40}, {40, 90, 40});
  vr::AddGaussianNoise(&img, 6.0, &rng);
  return img;
}

bool SameBits(double a, double b) {
  uint64_t ba = 0;
  uint64_t bb = 0;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

std::vector<const vr::FeatureExtractor*> Raw(
    const std::vector<std::unique_ptr<vr::FeatureExtractor>>& owned) {
  std::vector<const vr::FeatureExtractor*> raw;
  for (const auto& e : owned) raw.push_back(e.get());
  return raw;
}

/// Dies loudly unless the fused plan reproduces every legacy extractor
/// bit for bit on every frame — the same contract the ctest parity
/// suite pins, re-checked here so the bench numbers are meaningful.
void AssertParity(
    const std::vector<std::unique_ptr<vr::FeatureExtractor>>& extractors,
    vr::ExtractionPlan* plan, const std::vector<vr::Image>& frames) {
  for (const vr::Image& img : frames) {
    const vr::FeatureMap fused = plan->ExtractAll(img).value();
    for (const auto& extractor : extractors) {
      const vr::FeatureVector legacy = extractor->Extract(img).value();
      const vr::FeatureVector& got = fused.at(extractor->kind());
      bool same = legacy.size() == got.size();
      for (size_t i = 0; same && i < legacy.size(); ++i) {
        same = SameBits(legacy[i], got[i]);
      }
      if (!same) {
        std::fprintf(stderr, "PARITY FAILURE: %s fused != legacy\n",
                     vr::FeatureKindName(extractor->kind()));
        std::exit(1);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_features.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }
  const size_t iters = smoke ? 4 : 60;

  const auto extractors = vr::MakeAllExtractors();
  vr::ExtractionPlan plan(Raw(extractors));
  std::vector<vr::Image> frames;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    frames.push_back(BenchImage(seed));
  }

  AssertParity(extractors, &plan, frames);
  std::printf("parity: fused plan bit-identical to legacy extractors\n");

  // Legacy: each extractor standalone, mean ms per frame.
  std::vector<double> legacy_ms(extractors.size(), 0.0);
  for (size_t e = 0; e < extractors.size(); ++e) {
    vr::Stopwatch sw;
    for (size_t i = 0; i < iters; ++i) {
      auto fv = extractors[e]->Extract(frames[i % frames.size()]);
      if (!fv.ok()) return 1;
    }
    legacy_ms[e] = sw.ElapsedMillis() / static_cast<double>(iters);
  }

  // Fused: one ExtractAll pass per frame, cost split by the plan's own
  // timers (extractor time excludes the shared intermediates).
  std::vector<double> fused_ms(extractors.size(), 0.0);
  std::vector<double> intermediate_ms(vr::kNumIntermediates, 0.0);
  double fused_total_ms = 0.0;
  {
    vr::Stopwatch sw;
    for (size_t i = 0; i < iters; ++i) {
      vr::ExtractionPlan::FrameTimings timings;
      auto bank = plan.ExtractAll(frames[i % frames.size()], &timings);
      if (!bank.ok()) return 1;
      for (size_t e = 0; e < extractors.size(); ++e) {
        const auto kind = static_cast<size_t>(extractors[e]->kind());
        fused_ms[e] += static_cast<double>(timings.extractor_ns[kind]) / 1e6;
      }
      for (uint32_t b = 0; b < vr::kNumIntermediates; ++b) {
        intermediate_ms[b] +=
            static_cast<double>(timings.intermediate_ns[b]) / 1e6;
      }
    }
    fused_total_ms = sw.ElapsedMillis() / static_cast<double>(iters);
  }
  for (double& ms : fused_ms) ms /= static_cast<double>(iters);
  for (double& ms : intermediate_ms) ms /= static_cast<double>(iters);

  double legacy_total_ms = 0.0;
  for (double ms : legacy_ms) legacy_total_ms += ms;

  std::printf("\n%-18s %10s %10s %9s\n", "extractor", "legacy_ms", "fused_ms",
              "speedup");
  for (size_t e = 0; e < extractors.size(); ++e) {
    std::printf("%-18s %10.3f %10.3f %8.2fx\n",
                vr::FeatureKindName(extractors[e]->kind()), legacy_ms[e],
                fused_ms[e],
                fused_ms[e] > 0.0 ? legacy_ms[e] / fused_ms[e] : 0.0);
  }
  std::printf("\n%-18s %10s\n", "intermediate", "ms");
  for (uint32_t b = 0; b < vr::kNumIntermediates; ++b) {
    std::printf("%-18s %10.3f\n", vr::IntermediateName(b), intermediate_ms[b]);
  }
  std::printf("\nwhole bank (%dx%d): legacy %.2f ms, fused %.2f ms "
              "(%.2fx)\n",
              kWidth, kHeight, legacy_total_ms, fused_total_ms,
              fused_total_ms > 0.0 ? legacy_total_ms / fused_total_ms : 0.0);

  if (smoke) {
    std::printf("\nmicro_features smoke: PASS\n");
    return 0;
  }

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n  \"benchmark\": \"features\",\n"
               "  \"frame\": \"%dx%d\",\n  \"iterations\": %zu,\n"
               "  \"legacy_total_ms\": %.3f,\n"
               "  \"fused_total_ms\": %.3f,\n  \"extractors\": [\n",
               kWidth, kHeight, iters, legacy_total_ms, fused_total_ms);
  for (size_t e = 0; e < extractors.size(); ++e) {
    std::fprintf(json,
                 "    {\"name\": \"%s\", \"legacy_ms\": %.4f, "
                 "\"fused_ms\": %.4f}%s\n",
                 vr::FeatureKindName(extractors[e]->kind()), legacy_ms[e],
                 fused_ms[e], e + 1 < extractors.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"intermediates\": [\n");
  for (uint32_t b = 0; b < vr::kNumIntermediates; ++b) {
    std::fprintf(json, "    {\"name\": \"%s\", \"ms\": %.4f}%s\n",
                 vr::IntermediateName(b), intermediate_ms[b],
                 b + 1 < vr::kNumIntermediates ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
