/// \file micro_emd.cc
/// \brief Microbenchmarks for the EMD fast path (the paper's reference
/// [14]): exact EMD kernels and the lower-bound skipping scanner vs a
/// brute-force scan.

#include <benchmark/benchmark.h>

#include "similarity/emd.h"
#include "similarity/emd_signature.h"
#include "util/rng.h"

namespace {

std::vector<double> RandomHistogram(vr::Rng* rng, size_t n) {
  std::vector<double> h(n);
  for (auto& v : h) v = rng->UniformDouble(0, 10);
  return h;
}

/// Spiky histograms (mass concentrated in a few bins) — the regime
/// where the centroid lower bound prunes aggressively.
std::vector<double> SpikyHistogram(vr::Rng* rng, size_t n) {
  std::vector<double> h(n, 0.0);
  for (int s = 0; s < 3; ++s) {
    h[static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(n) - 1))] +=
        rng->UniformDouble(1, 5);
  }
  return h;
}

void BM_EmdLinear(benchmark::State& state) {
  vr::Rng rng(1);
  const auto a = RandomHistogram(&rng, static_cast<size_t>(state.range(0)));
  const auto b = RandomHistogram(&rng, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(vr::EmdLinear(a, b));
  }
}
BENCHMARK(BM_EmdLinear)->Arg(64)->Arg(256)->Arg(1024);

void BM_EmdCircular(benchmark::State& state) {
  vr::Rng rng(2);
  const auto a = RandomHistogram(&rng, static_cast<size_t>(state.range(0)));
  const auto b = RandomHistogram(&rng, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(vr::EmdCircular(a, b));
  }
}
BENCHMARK(BM_EmdCircular)->Arg(64)->Arg(256);

void BM_EmdLowerBound(benchmark::State& state) {
  vr::Rng rng(3);
  const auto a = RandomHistogram(&rng, 256);
  const auto b = RandomHistogram(&rng, 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vr::EmdCentroidLowerBound(a, b));
  }
}
BENCHMARK(BM_EmdLowerBound);

void BM_EmdTopK(benchmark::State& state) {
  const bool use_skipping = state.range(0) != 0;
  vr::Rng rng(4);
  const auto query = SpikyHistogram(&rng, 256);
  std::vector<std::pair<int64_t, std::vector<double>>> candidates;
  for (int64_t id = 0; id < 2000; ++id) {
    candidates.emplace_back(id, SpikyHistogram(&rng, 256));
  }
  size_t exact = 0;
  for (auto _ : state) {
    if (use_skipping) {
      vr::EmdTopKScanner scanner(10);
      benchmark::DoNotOptimize(scanner.Scan(query, candidates));
      exact = scanner.stats().exact_computed;
    } else {
      // Brute force: exact EMD for every candidate.
      double best = 1e300;
      for (const auto& [id, hist] : candidates) {
        best = std::min(best, vr::EmdLinear(query, hist));
      }
      benchmark::DoNotOptimize(best);
      exact = candidates.size();
    }
  }
  state.SetLabel(use_skipping ? "lb-skipping" : "brute-force");
  state.counters["exact_emds"] = static_cast<double>(exact);
}
BENCHMARK(BM_EmdTopK)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

vr::Signature RandomSignature(vr::Rng* rng, int n) {
  vr::Signature s;
  for (int i = 0; i < n; ++i) {
    vr::SignaturePoint p;
    p.weight = rng->UniformDouble(0.1, 1.0);
    p.position = {rng->UniformDouble(0, 1), rng->UniformDouble(0, 1),
                  rng->UniformDouble(0, 1)};
    s.push_back(p);
  }
  return s;
}

void BM_EmdSignatureExact(benchmark::State& state) {
  vr::Rng rng(6);
  const auto a = RandomSignature(&rng, static_cast<int>(state.range(0)));
  const auto b = RandomSignature(&rng, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(vr::EmdSignatureDistance(a, b));
  }
}
BENCHMARK(BM_EmdSignatureExact)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

/// The regime the paper's reference [14] targets: the exact metric is a
/// transportation problem (O(n^3)-ish) while the lower bound is O(n),
/// so skipping exact computations is a real win.
void BM_EmdSignatureTopK(benchmark::State& state) {
  const bool use_skipping = state.range(0) != 0;
  vr::Rng rng(7);
  // Each candidate clusters around its own theme color (as real images
  // do); diverse centroids are what let the lower bound prune.
  auto themed_signature = [&rng]() {
    vr::Signature s;
    const std::array<double, 3> theme = {rng.UniformDouble(0, 1),
                                         rng.UniformDouble(0, 1),
                                         rng.UniformDouble(0, 1)};
    for (int i = 0; i < 8; ++i) {
      vr::SignaturePoint p;
      p.weight = rng.UniformDouble(0.1, 1.0);
      for (int d = 0; d < 3; ++d) {
        p.position[d] =
            std::clamp(theme[d] + rng.UniformDouble(-0.1, 0.1), 0.0, 1.0);
      }
      s.push_back(p);
    }
    return s;
  };
  const auto query = themed_signature();
  std::vector<std::pair<int64_t, vr::Signature>> candidates;
  for (int64_t id = 0; id < 500; ++id) {
    candidates.emplace_back(id, themed_signature());
  }
  size_t exact = 0;
  for (auto _ : state) {
    if (use_skipping) {
      vr::SignatureTopKScanner scanner(10);
      benchmark::DoNotOptimize(scanner.Scan(query, candidates));
      exact = scanner.stats().exact_computed;
    } else {
      double best = 1e300;
      for (const auto& [id, sig] : candidates) {
        best = std::min(best, vr::EmdSignatureDistance(query, sig).value());
      }
      benchmark::DoNotOptimize(best);
      exact = candidates.size();
    }
  }
  state.SetLabel(use_skipping ? "lb-skipping" : "brute-force");
  state.counters["exact_emds"] = static_cast<double>(exact);
}
BENCHMARK(BM_EmdSignatureTopK)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
