/// \file ablation_fusion.cc
/// \brief Ablation study behind the paper's headline claim: how does
/// retrieval precision change as features are added to the fusion, and
/// how much does the normalization strategy matter?
///
/// Not a table in the paper, but the design choice (multi-feature
/// combination) the paper's conclusion rests on; DESIGN.md calls this
/// out as the ablation bench.
///
///   ./ablation_fusion [videos_per_category] [queries_per_category]

#include <cstdio>
#include <iostream>

#include "eval/corpus.h"
#include "eval/table1_runner.h"
#include "eval/user_study.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

/// Precision@20 of the combined ranking with only the given features
/// enabled.
vr::Result<double> CombinedPrecision(
    const std::vector<vr::FeatureKind>& features,
    vr::NormalizationKind normalization, int videos_per_category,
    int queries_per_category, uint64_t seed) {
  const std::string dir = "/tmp/vretrieve_ablation";
  vr::RemoveDirRecursive(dir);
  vr::EngineOptions options;
  options.enabled_features = features;
  options.normalization = normalization;
  options.store_video_blob = false;
  VR_ASSIGN_OR_RETURN(auto engine, vr::RetrievalEngine::Open(dir, options));
  vr::CorpusSpec corpus;
  corpus.videos_per_category = videos_per_category;
  corpus.width = 128;
  corpus.height = 96;
  corpus.seed = seed;
  VR_ASSIGN_OR_RETURN(vr::CorpusInfo info,
                      vr::BuildCorpus(engine.get(), corpus));
  std::vector<double> precisions;
  for (int c = 0; c < vr::kNumCategories; ++c) {
    const auto category = static_cast<vr::VideoCategory>(c);
    for (int q = 0; q < queries_per_category; ++q) {
      VR_ASSIGN_OR_RETURN(
          vr::Image query,
          vr::MakeQueryFrame(corpus, category,
                             7000 + static_cast<uint64_t>(c) * 100 +
                                 static_cast<uint64_t>(q)));
      VR_ASSIGN_OR_RETURN(auto results, engine->QueryByImage(query, 20));
      size_t hits = 0;
      for (const auto& r : results) {
        if (info.CategoryOf(r.v_id) == category) ++hits;
      }
      precisions.push_back(static_cast<double>(hits) / 20.0);
    }
  }
  double mean = 0;
  for (double p : precisions) mean += p;
  return mean / static_cast<double>(precisions.size());
}

}  // namespace

int main(int argc, char** argv) {
  const int videos =
      argc > 1 ? static_cast<int>(vr::ParseInt64(argv[1]).ValueOr(4)) : 4;
  const int queries =
      argc > 2 ? static_cast<int>(vr::ParseInt64(argv[2]).ValueOr(4)) : 4;
  const uint64_t seed = 77;

  std::printf("=== Ablation: feature fusion (precision@20, combined) ===\n\n");

  // Cumulative feature sets, cheapest first.
  const std::vector<std::pair<const char*, std::vector<vr::FeatureKind>>>
      sets = {
          {"histogram only", {vr::FeatureKind::kColorHistogram}},
          {"+ naive signature",
           {vr::FeatureKind::kColorHistogram,
            vr::FeatureKind::kNaiveSignature}},
          {"+ glcm",
           {vr::FeatureKind::kColorHistogram,
            vr::FeatureKind::kNaiveSignature, vr::FeatureKind::kGlcm}},
          {"+ tamura",
           {vr::FeatureKind::kColorHistogram,
            vr::FeatureKind::kNaiveSignature, vr::FeatureKind::kGlcm,
            vr::FeatureKind::kTamura}},
          {"+ gabor",
           {vr::FeatureKind::kColorHistogram,
            vr::FeatureKind::kNaiveSignature, vr::FeatureKind::kGlcm,
            vr::FeatureKind::kTamura, vr::FeatureKind::kGabor}},
          {"+ correlogram",
           {vr::FeatureKind::kColorHistogram,
            vr::FeatureKind::kNaiveSignature, vr::FeatureKind::kGlcm,
            vr::FeatureKind::kTamura, vr::FeatureKind::kGabor,
            vr::FeatureKind::kAutoCorrelogram}},
          {"all seven",
           {vr::FeatureKind::kColorHistogram,
            vr::FeatureKind::kNaiveSignature, vr::FeatureKind::kGlcm,
            vr::FeatureKind::kTamura, vr::FeatureKind::kGabor,
            vr::FeatureKind::kAutoCorrelogram,
            vr::FeatureKind::kRegionGrowing}},
      };

  vr::TablePrinter table({"feature set", "precision@20"});
  for (const auto& [label, features] : sets) {
    auto p = CombinedPrecision(features, vr::NormalizationKind::kMinMax,
                               videos, queries, seed);
    if (!p.ok()) {
      std::fprintf(stderr, "%s: %s\n", label, p.status().ToString().c_str());
      return 1;
    }
    table.AddRow(label, {*p});
  }
  table.Print(std::cout);

  std::printf("\n=== Ablation: score normalization (all seven features) ===\n\n");
  vr::TablePrinter norm_table({"normalization", "precision@20"});
  for (auto [kind, name] :
       {std::make_pair(vr::NormalizationKind::kMinMax, "min-max"),
        std::make_pair(vr::NormalizationKind::kGaussian, "gaussian"),
        std::make_pair(vr::NormalizationKind::kRank, "rank")}) {
    auto p = CombinedPrecision(sets.back().second, kind, videos, queries,
                               seed);
    if (!p.ok()) {
      std::fprintf(stderr, "%s: %s\n", name, p.status().ToString().c_str());
      return 1;
    }
    norm_table.AddRow(name, {*p});
  }
  norm_table.Print(std::cout);
  return 0;
}
