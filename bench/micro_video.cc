/// \file micro_video.cc
/// \brief Microbenchmarks for the video substrate: synthesis, container
/// encode/decode, PackBits.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "video/synth/generator.h"
#include "video/video_reader.h"
#include "video/video_writer.h"

namespace {

vr::SyntheticVideoSpec BenchSpec(vr::VideoCategory category) {
  vr::SyntheticVideoSpec spec;
  spec.category = category;
  spec.width = 160;
  spec.height = 120;
  spec.num_scenes = 2;
  spec.frames_per_scene = 10;
  spec.seed = 9;
  return spec;
}

void BM_SynthesizeVideo(benchmark::State& state) {
  const auto category = static_cast<vr::VideoCategory>(state.range(0));
  const auto spec = BenchSpec(category);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vr::GenerateVideoFrames(spec));
  }
  state.SetLabel(vr::CategoryName(category));
  state.SetItemsProcessed(state.iterations() * 20);  // frames
}
BENCHMARK(BM_SynthesizeVideo)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

void BM_VideoEncode(benchmark::State& state) {
  const auto frames =
      vr::GenerateVideoFrames(BenchSpec(vr::VideoCategory::kCartoon)).value();
  const std::string path = "/tmp/vretrieve_bench_encode.vsv";
  for (auto _ : state) {
    vr::VideoWriter writer;
    (void)writer.Open(path, 160, 120, 3, 12);
    for (const vr::Image& f : frames) (void)writer.Append(f);
    (void)writer.Finish();
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(frames.size()));
}
BENCHMARK(BM_VideoEncode)->Unit(benchmark::kMillisecond);

void BM_VideoDecode(benchmark::State& state) {
  const std::string path = "/tmp/vretrieve_bench_decode.vsv";
  (void)vr::GenerateVideoFile(BenchSpec(vr::VideoCategory::kSports), path);
  for (auto _ : state) {
    vr::VideoReader reader;
    (void)reader.Open(path);
    benchmark::DoNotOptimize(reader.ReadAll());
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(state.iterations() * 20);
}
BENCHMARK(BM_VideoDecode)->Unit(benchmark::kMillisecond);

void BM_PackBits(benchmark::State& state) {
  const auto frames =
      vr::GenerateVideoFrames(BenchSpec(vr::VideoCategory::kELearning))
          .value();
  const std::vector<uint8_t>& raw = frames[0].buffer();
  for (auto _ : state) {
    const auto encoded = vr::PackBitsEncode(raw);
    benchmark::DoNotOptimize(vr::PackBitsDecode(encoded, raw.size()));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(raw.size()));
}
BENCHMARK(BM_PackBits);

}  // namespace
