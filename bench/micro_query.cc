/// \file micro_query.cc
/// \brief Query-path benchmark: bucket-pruned candidate selection and
/// sharded ranking over a synthetic corpus. Plain executable (see
/// EXPERIMENTS.md "Query latency" for the reproducible recipe); writes
/// machine-readable results to BENCH_query.json (or the path given as
/// argv[1]).
///
/// Three measurements:
///  - pruning: mean candidate count per RangeLookupMode versus the
///    full corpus (the reduction bucket lookup buys over a scan);
///  - latency: QueryByImage p50/p95 and qps at 1/2/4/8 rank shards
///    over the unpruned candidate set (use_index=false, extraction
///    cache off), so every query pays cold fused extraction and the
///    ranking stage — the part sharding accelerates — dominates;
///  - paths: the cold baseline versus the extraction-cache hit path
///    (repeated query frames) and query-by-stored-id (no extraction at
///    all), each parity-checked against the cold rankings first.
///
/// Every sharded run is asserted byte-identical to the serial
/// baseline before its numbers are reported. The `cpus` field records
/// how many cores the numbers were taken on — on a single-core
/// machine every shard count collapses to ~1x.
///
/// `--smoke` runs a seconds-scale corpus, keeps the parity assert,
/// skips the JSON; scripts/check_all.sh uses it as a regression gate.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "eval/table1_runner.h"  // RemoveDirRecursive
#include "retrieval/engine.h"
#include "util/stopwatch.h"
#include "util/thread.h"
#include "video/synth/generator.h"

namespace {

std::vector<vr::Image> BenchVideo(int i) {
  vr::SyntheticVideoSpec spec;
  spec.category = static_cast<vr::VideoCategory>(i % vr::kNumCategories);
  spec.width = 64;
  spec.height = 48;
  spec.num_scenes = 4;
  spec.frames_per_scene = 6;
  spec.seed = 7000 + static_cast<uint64_t>(i);
  return vr::GenerateVideoFrames(spec).value();
}

vr::EngineOptions BaseOptions() {
  vr::EngineOptions options;  // all seven extractors, the honest load
  options.store_video_blob = false;
  return options;
}

/// Ingests synthetic videos until the corpus holds at least
/// \p target_key_frames key frames (or \p max_videos videos).
size_t BuildCorpus(const std::string& dir, size_t target_key_frames,
                   int max_videos) {
  vr::RemoveDirRecursive(dir);
  auto engine = vr::RetrievalEngine::Open(dir, BaseOptions()).value();
  int i = 0;
  while (engine->indexed_key_frames() < target_key_frames &&
         i < max_videos) {
    (void)engine->IngestFrames(BenchVideo(i), "bench_" + std::to_string(i))
        .value();
    ++i;
  }
  (void)engine->store()->Checkpoint();
  return engine->indexed_key_frames();
}

std::vector<vr::Image> BuildQueries(size_t count) {
  std::vector<vr::Image> queries;
  for (size_t i = 0; i < count; ++i) {
    vr::SyntheticVideoSpec spec;
    spec.category =
        static_cast<vr::VideoCategory>(i % vr::kNumCategories);
    spec.width = 64;
    spec.height = 48;
    spec.num_scenes = 1;
    spec.frames_per_scene = 2;
    spec.seed = 8000 + static_cast<uint64_t>(i);
    queries.push_back(vr::GenerateVideoFrames(spec).value()[0]);
  }
  return queries;
}

struct PruningResult {
  const char* mode = "";
  double avg_candidates = 0.0;
  size_t total = 0;
};

PruningResult MeasurePruning(const std::string& dir,
                             vr::RangeLookupMode mode, const char* name,
                             const std::vector<vr::Image>& queries) {
  vr::EngineOptions options = BaseOptions();
  options.use_index = true;
  options.lookup_mode = mode;
  auto engine = vr::RetrievalEngine::Open(dir, options).value();
  PruningResult result;
  result.mode = name;
  for (const vr::Image& q : queries) {
    (void)engine->QueryByImage(q, 10).value();
    result.avg_candidates +=
        static_cast<double>(engine->last_candidate_stats().candidates);
    result.total = engine->last_candidate_stats().total;
  }
  result.avg_candidates /= static_cast<double>(queries.size());
  return result;
}

struct LatencyResult {
  std::string label;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double qps = 0.0;
  // Per-query stage means from the engine's QueryStats deltas. The
  // total is dominated by query-feature extraction; rank_ms is the
  // stage sharding actually accelerates, so report it separately.
  double extract_ms = 0.0;
  double rank_ms = 0.0;
};

double Percentile(std::vector<double> sorted_ms, double p) {
  std::sort(sorted_ms.begin(), sorted_ms.end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_ms.size() - 1) / 100.0 + 0.5);
  return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

std::unique_ptr<vr::RetrievalEngine> OpenRanked(const std::string& dir,
                                                size_t shards,
                                                size_t cache_capacity) {
  vr::EngineOptions options = BaseOptions();
  options.use_index = false;  // rank the whole corpus: worst case
  options.parallel_rank_threshold = shards > 1 ? 1 : 0;
  options.rank_workers = std::max<size_t>(shards, 1);
  // The bench compares shard counts on whatever box it runs on, so it
  // must be allowed to exceed hardware_concurrency (the engine default
  // caps at the core count).
  options.rank_oversubscribe = true;
  // The shard comparison measures the cold path: extraction must run
  // on every query, so the cache is disabled unless a path measurement
  // asks for it.
  options.extraction_cache_capacity = cache_capacity;
  return vr::RetrievalEngine::Open(dir, options).value();
}

/// Dies loudly unless the sharded engine reproduces the serial
/// baseline bit for bit on every query.
void AssertParity(const std::vector<std::vector<vr::QueryResult>>& baseline,
                  vr::RetrievalEngine* engine,
                  const std::vector<vr::Image>& queries, size_t shards) {
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto results = engine->QueryByImage(queries[i], 20).value();
    const auto& expected = baseline[i];
    bool same = results.size() == expected.size();
    for (size_t j = 0; same && j < results.size(); ++j) {
      same = results[j].i_id == expected[j].i_id &&
             results[j].score == expected[j].score;
    }
    if (!same) {
      std::fprintf(stderr,
                   "PARITY FAILURE: shards=%zu diverges from serial on "
                   "query %zu\n",
                   shards, i);
      std::exit(1);
    }
  }
}

LatencyResult MeasureLatency(vr::RetrievalEngine* engine,
                             const std::vector<vr::Image>& queries,
                             size_t iters, const std::string& label) {
  for (const vr::Image& q : queries) (void)engine->QueryByImage(q, 20);
  std::vector<double> ms;
  ms.reserve(iters);
  const vr::QueryStats before = engine->query_stats();
  vr::Stopwatch total;
  for (size_t i = 0; i < iters; ++i) {
    vr::Stopwatch sw;
    (void)engine->QueryByImage(queries[i % queries.size()], 20).value();
    ms.push_back(sw.ElapsedMillis());
  }
  const double seconds = total.ElapsedMillis() / 1000.0;
  const vr::QueryStats after = engine->query_stats();
  LatencyResult result;
  result.label = label;
  result.p50_ms = Percentile(ms, 50);
  result.p95_ms = Percentile(ms, 95);
  result.qps = static_cast<double>(iters) / seconds;
  result.extract_ms =
      (after.extract_ms - before.extract_ms) / static_cast<double>(iters);
  result.rank_ms =
      (after.rank_ms - before.rank_ms) / static_cast<double>(iters);
  return result;
}

/// Query-by-stored-id latency: ranks against the features already in
/// the columnar matrix — no pixels, no extraction, no cache.
LatencyResult MeasureById(vr::RetrievalEngine* engine,
                          const std::vector<int64_t>& ids, size_t iters) {
  for (size_t i = 0; i < std::min<size_t>(ids.size(), 4); ++i) {
    (void)engine->QueryByStoredId(ids[i], 20);
  }
  std::vector<double> ms;
  ms.reserve(iters);
  const vr::QueryStats before = engine->query_stats();
  vr::Stopwatch total;
  for (size_t i = 0; i < iters; ++i) {
    vr::Stopwatch sw;
    (void)engine->QueryByStoredId(ids[i % ids.size()], 20).value();
    ms.push_back(sw.ElapsedMillis());
  }
  const double seconds = total.ElapsedMillis() / 1000.0;
  const vr::QueryStats after = engine->query_stats();
  LatencyResult result;
  result.label = "by_id";
  result.p50_ms = Percentile(ms, 50);
  result.p95_ms = Percentile(ms, 95);
  result.qps = static_cast<double>(iters) / seconds;
  result.extract_ms =
      (after.extract_ms - before.extract_ms) / static_cast<double>(iters);
  result.rank_ms =
      (after.rank_ms - before.rank_ms) / static_cast<double>(iters);
  return result;
}

/// Every stored key-frame id, in storage order.
std::vector<int64_t> AllKeyFrameIds(vr::RetrievalEngine* engine) {
  std::vector<int64_t> ids;
  for (const auto& video : engine->store()->ListVideos().value()) {
    const auto frame_ids =
        engine->store()->KeyFrameIdsOfVideo(video.v_id).value();
    ids.insert(ids.end(), frame_ids.begin(), frame_ids.end());
  }
  return ids;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_query.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }
  const unsigned cpus = vr::Thread::HardwareConcurrency();
  const std::string dir = "/tmp/vretrieve_bench_query";
  const size_t target = smoke ? 32 : 512;
  const int max_videos = smoke ? 4 : 128;
  const size_t iters = smoke ? 8 : 120;

  std::printf("building corpus (target %zu key frames)...\n", target);
  const size_t key_frames = BuildCorpus(dir, target, max_videos);
  std::printf("corpus: %zu key frames\n", key_frames);
  const std::vector<vr::Image> queries = BuildQueries(smoke ? 4 : 16);

  // Serial baseline — also the parity reference for every shard count.
  std::vector<std::vector<vr::QueryResult>> baseline;
  std::vector<LatencyResult> runs;
  {
    auto engine = OpenRanked(dir, 1, /*cache_capacity=*/0);
    for (const vr::Image& q : queries) {
      baseline.push_back(engine->QueryByImage(q, 20).value());
    }
    runs.push_back(MeasureLatency(engine.get(), queries, iters, "shards=1"));
  }
  for (const size_t shards : {size_t{2}, size_t{4}, size_t{8}}) {
    auto engine = OpenRanked(dir, shards, /*cache_capacity=*/0);
    AssertParity(baseline, engine.get(), queries, shards);
    runs.push_back(MeasureLatency(engine.get(), queries, iters,
                                  "shards=" + std::to_string(shards)));
    if (engine->query_stats().sharded_ranks == 0) {
      std::fprintf(stderr, "shards=%zu never sharded\n", shards);
      return 1;
    }
  }
  std::printf("parity: sharded results byte-identical to serial\n");

  // Fast paths against the cold baseline: the extraction cache serving
  // a repeated query frame, and query-by-stored-id skipping pixels
  // entirely. Both must reproduce the cold rankings exactly.
  std::vector<LatencyResult> paths;
  {
    LatencyResult cold = runs[0];
    cold.label = "cold";
    paths.push_back(cold);
    auto engine = OpenRanked(dir, 1, /*cache_capacity=*/64);
    AssertParity(baseline, engine.get(), queries, 1);
    paths.push_back(
        MeasureLatency(engine.get(), queries, iters, "cache_hit"));
    if (engine->query_stats().cache_hits == 0) {
      std::fprintf(stderr, "cache_hit run never hit the cache\n");
      return 1;
    }
    const std::vector<int64_t> ids = AllKeyFrameIds(engine.get());
    if (ids.empty()) {
      std::fprintf(stderr, "no stored key-frame ids\n");
      return 1;
    }
    paths.push_back(MeasureById(engine.get(), ids, iters));
  }

  const std::vector<PruningResult> pruning = {
      MeasurePruning(dir, vr::RangeLookupMode::kExact, "exact", queries),
      MeasurePruning(dir, vr::RangeLookupMode::kLineage, "lineage", queries),
      MeasurePruning(dir, vr::RangeLookupMode::kOverlapping, "overlapping",
                     queries),
  };

  const double base_qps = runs[0].qps;
  std::printf("\n%-10s %9s %9s %11s %8s %9s %9s   (%u cpus)\n", "config",
              "p50_ms", "p95_ms", "extract_ms", "rank_ms", "qps", "speedup",
              cpus);
  for (const LatencyResult& r : runs) {
    std::printf("%-10s %9.2f %9.2f %11.2f %8.2f %9.1f %8.2fx\n",
                r.label.c_str(), r.p50_ms, r.p95_ms, r.extract_ms, r.rank_ms,
                r.qps, r.qps / base_qps);
  }
  std::printf("\n%-10s %9s %9s %11s %8s %9s\n", "path", "p50_ms", "p95_ms",
              "extract_ms", "rank_ms", "qps");
  for (const LatencyResult& r : paths) {
    std::printf("%-10s %9.2f %9.2f %11.2f %8.2f %9.1f\n", r.label.c_str(),
                r.p50_ms, r.p95_ms, r.extract_ms, r.rank_ms, r.qps);
  }
  std::printf("\n%-12s %16s %8s %10s\n", "mode", "avg_candidates", "total",
              "scanned");
  for (const PruningResult& p : pruning) {
    std::printf("%-12s %16.1f %8zu %9.1f%%\n", p.mode, p.avg_candidates,
                p.total,
                100.0 * p.avg_candidates / static_cast<double>(p.total));
  }

  vr::RemoveDirRecursive(dir);
  if (smoke) {
    std::printf("\nmicro_query smoke: PASS\n");
    return 0;
  }

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n  \"benchmark\": \"query_path\",\n"
               "  \"key_frames\": %zu,\n  \"queries\": %zu,\n"
               "  \"iterations\": %zu,\n  \"cpus\": %u,\n  \"runs\": [\n",
               key_frames, queries.size(), iters, cpus);
  for (size_t i = 0; i < runs.size(); ++i) {
    const LatencyResult& r = runs[i];
    std::fprintf(json,
                 "    {\"config\": \"%s\", \"p50_ms\": %.3f, "
                 "\"p95_ms\": %.3f, \"extract_ms\": %.3f, "
                 "\"rank_ms\": %.3f, \"qps\": %.3f, \"speedup\": %.3f}%s\n",
                 r.label.c_str(), r.p50_ms, r.p95_ms, r.extract_ms, r.rank_ms,
                 r.qps, r.qps / base_qps, i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"paths\": [\n");
  for (size_t i = 0; i < paths.size(); ++i) {
    const LatencyResult& r = paths[i];
    std::fprintf(json,
                 "    {\"path\": \"%s\", \"p50_ms\": %.3f, "
                 "\"p95_ms\": %.3f, \"extract_ms\": %.3f, "
                 "\"rank_ms\": %.3f, \"qps\": %.3f}%s\n",
                 r.label.c_str(), r.p50_ms, r.p95_ms, r.extract_ms, r.rank_ms,
                 r.qps, i + 1 < paths.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"pruning\": [\n");
  for (size_t i = 0; i < pruning.size(); ++i) {
    const PruningResult& p = pruning[i];
    std::fprintf(json,
                 "    {\"mode\": \"%s\", \"avg_candidates\": %.1f, "
                 "\"total\": %zu, \"scanned_fraction\": %.4f}%s\n",
                 p.mode, p.avg_candidates, p.total,
                 p.avg_candidates / static_cast<double>(p.total),
                 i + 1 < pruning.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
